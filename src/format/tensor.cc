#include "src/format/tensor.h"

#include <cmath>
#include <sstream>

namespace skadi {

namespace {
int64_t ElementCount(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  Tensor t;
  int64_t n = ElementCount(shape);
  t.shape_ = std::move(shape);
  t.data_.assign(static_cast<size_t>(n), 0.0);
  return t;
}

Tensor Tensor::Random(std::vector<int64_t> shape, Rng& rng, double scale) {
  Tensor t = Zeros(std::move(shape));
  for (double& v : t.data_) {
    v = (rng.NextDouble() * 2.0 - 1.0) * scale;
  }
  return t;
}

Result<Tensor> Tensor::FromData(std::vector<int64_t> shape, std::vector<double> data) {
  if (ElementCount(shape) != static_cast<int64_t>(data.size())) {
    return Status::InvalidArgument("tensor data size " + std::to_string(data.size()) +
                                   " does not match shape element count " +
                                   std::to_string(ElementCount(shape)));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Result<Tensor> Tensor::View(std::vector<int64_t> shape, std::shared_ptr<const void> owner,
                            const double* data, size_t n) {
  if (ElementCount(shape) != static_cast<int64_t>(n)) {
    return Status::InvalidArgument("tensor view size " + std::to_string(n) +
                                   " does not match shape element count " +
                                   std::to_string(ElementCount(shape)));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.owner_ = std::move(owner);
  t.view_ = {data, n};
  return t;
}

std::string Tensor::ShapeToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("matmul shape mismatch: " + a.ShapeToString() + " x " +
                                   b.ShapeToString());
  }
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  Tensor c = Tensor::Zeros({m, n});
  // i-k-j loop order: streams B rows, decent cache behaviour without tiling.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      double aik = a.At(i, kk);
      if (aik == 0.0) {
        continue;
      }
      for (int64_t j = 0; j < n; ++j) {
        c.Set(i, j, c.At(i, j) + aik * b.At(kk, j));
      }
    }
  }
  return c;
}

namespace {
Result<Tensor> Elementwise(const Tensor& a, const Tensor& b, double (*fn)(double, double)) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("elementwise shape mismatch: " + a.ShapeToString() +
                                   " vs " + b.ShapeToString());
  }
  Tensor out = a;
  for (size_t i = 0; i < out.mutable_data().size(); ++i) {
    out.mutable_data()[i] = fn(a.data()[i], b.data()[i]);
  }
  return out;
}
}  // namespace

Result<Tensor> Add(const Tensor& a, const Tensor& b) {
  return Elementwise(a, b, [](double x, double y) { return x + y; });
}

Result<Tensor> Sub(const Tensor& a, const Tensor& b) {
  return Elementwise(a, b, [](double x, double y) { return x - y; });
}

Result<Tensor> Mul(const Tensor& a, const Tensor& b) {
  return Elementwise(a, b, [](double x, double y) { return x * y; });
}

Result<Tensor> AddRowVector(const Tensor& a, const Tensor& row) {
  if (row.num_elements() != a.cols()) {
    return Status::InvalidArgument("row vector length " +
                                   std::to_string(row.num_elements()) +
                                   " does not match matrix cols " +
                                   std::to_string(a.cols()));
  }
  Tensor out = a;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out.Set(r, c, a.At(r, c) + row.data()[static_cast<size_t>(c)]);
    }
  }
  return out;
}

Tensor Scale(const Tensor& a, double factor) {
  Tensor out = a;
  for (double& v : out.mutable_data()) {
    v *= factor;
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out = a;
  for (double& v : out.mutable_data()) {
    v = v > 0.0 ? v : 0.0;
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = a;
  for (double& v : out.mutable_data()) {
    v = 1.0 / (1.0 + std::exp(-v));
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out = Tensor::Zeros({a.cols(), a.rows()});
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out.Set(c, r, a.At(r, c));
    }
  }
  return out;
}

double ReduceSum(const Tensor& a) {
  double sum = 0.0;
  for (double v : a.data()) {
    sum += v;
  }
  return sum;
}

double ReduceMean(const Tensor& a) {
  return a.num_elements() == 0 ? 0.0
                               : ReduceSum(a) / static_cast<double>(a.num_elements());
}

Tensor ColumnMean(const Tensor& a) {
  Tensor out = Tensor::Zeros({1, a.cols()});
  if (a.rows() == 0) {
    return out;
  }
  for (int64_t c = 0; c < a.cols(); ++c) {
    double sum = 0.0;
    for (int64_t r = 0; r < a.rows(); ++r) {
      sum += a.At(r, c);
    }
    out.Set(0, c, sum / static_cast<double>(a.rows()));
  }
  return out;
}

}  // namespace skadi
