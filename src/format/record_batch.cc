#include "src/format/record_batch.h"

#include <numeric>
#include <sstream>

namespace skadi {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return i;
    }
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << fields_[i].name << ": " << DataTypeName(fields_[i].type);
  }
  os << "}";
  return os.str();
}

Result<RecordBatch> RecordBatch::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(schema.num_fields()) + " fields but " +
        std::to_string(columns.size()) + " columns given");
  }
  int64_t rows = columns.empty() ? 0 : columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::InvalidArgument("column " + std::to_string(i) + " type mismatch: " +
                                     std::string(DataTypeName(columns[i].type())) +
                                     " vs schema " +
                                     std::string(DataTypeName(schema.field(i).type)));
    }
    if (columns[i].length() != rows) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " length mismatch: " +
                                     std::to_string(columns[i].length()) + " vs " +
                                     std::to_string(rows));
    }
  }
  RecordBatch batch;
  batch.schema_ = std::move(schema);
  batch.columns_ = std::move(columns);
  batch.num_rows_ = rows;
  return batch;
}

RecordBatch RecordBatch::Empty(Schema schema) {
  std::vector<Column> columns;
  columns.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    ColumnBuilder builder(f.type);
    columns.push_back(builder.Finish());
  }
  auto result = Make(std::move(schema), std::move(columns));
  return std::move(result).value();
}

const Column* RecordBatch::ColumnByName(const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) {
    return nullptr;
  }
  return &columns_[*idx];
}

size_t RecordBatch::ByteSize() const {
  size_t total = 0;
  for (const Column& c : columns_) {
    total += c.ByteSize();
  }
  return total;
}

RecordBatch RecordBatch::Take(const std::vector<int64_t>& indices) const {
  std::vector<Column> columns;
  columns.reserve(columns_.size());
  for (const Column& c : columns_) {
    columns.push_back(c.Take(indices));
  }
  auto result = Make(schema_, std::move(columns));
  return std::move(result).value();
}

RecordBatch RecordBatch::Slice(int64_t offset, int64_t length) const {
  if (offset < 0) {
    offset = 0;
  }
  if (offset > num_rows_) {
    offset = num_rows_;
  }
  if (offset + length > num_rows_) {
    length = num_rows_ - offset;
  }
  std::vector<Column> columns;
  columns.reserve(columns_.size());
  for (const Column& c : columns_) {
    columns.push_back(c.SliceRange(offset, length));
  }
  auto result = Make(schema_, std::move(columns));
  return std::move(result).value();
}

std::string RecordBatch::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << num_rows_ << "\n";
  int64_t limit = std::min<int64_t>(max_rows, num_rows_);
  for (int64_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) {
        os << "\t";
      }
      os << columns_[c].ValueToString(r);
    }
    os << "\n";
  }
  if (limit < num_rows_) {
    os << "... (" << (num_rows_ - limit) << " more)\n";
  }
  return os.str();
}

Result<RecordBatch> ConcatBatches(const std::vector<RecordBatch>& batches) {
  if (batches.empty()) {
    return Status::InvalidArgument("no batches to concatenate");
  }
  const Schema& schema = batches[0].schema();
  for (const RecordBatch& b : batches) {
    if (!(b.schema() == schema)) {
      return Status::InvalidArgument("schema mismatch in concat: " + schema.ToString() +
                                     " vs " + b.schema().ToString());
    }
  }
  std::vector<Column> columns;
  columns.reserve(schema.num_fields());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnBuilder builder(schema.field(c).type);
    for (const RecordBatch& b : batches) {
      for (int64_t r = 0; r < b.num_rows(); ++r) {
        builder.AppendFrom(b.column(c), r);
      }
    }
    columns.push_back(builder.Finish());
  }
  return RecordBatch::Make(schema, std::move(columns));
}

}  // namespace skadi
