// Scalar data types of the shared columnar format (the reproduction's
// Arrow stand-in). Four types cover the paper's workloads: analytics
// (int/float/string), ML features (float), and predicates (bool).
#ifndef SRC_FORMAT_DATATYPE_H_
#define SRC_FORMAT_DATATYPE_H_

#include <cstdint>
#include <string_view>

namespace skadi {

enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
  kBool = 3,
};

std::string_view DataTypeName(DataType type);

// Fixed width in bytes; 0 for variable-width (string).
inline size_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 8;
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return 0;
    case DataType::kBool:
      return 1;
  }
  return 0;
}

}  // namespace skadi

#endif  // SRC_FORMAT_DATATYPE_H_
