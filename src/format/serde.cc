#include "src/format/serde.h"

namespace skadi {

namespace {
constexpr uint32_t kIpcMagic = 0x53414249;  // "SABI"
constexpr uint32_t kRowMagic = 0x53524F57;  // "SROW"
constexpr uint32_t kTensorMagic = 0x53544E53;

template <typename T>
void AppendVector(BufferBuilder& b, const std::vector<T>& v) {
  b.AppendU64(v.size());
  if (!v.empty()) {
    b.AppendBytes(v.data(), v.size() * sizeof(T));
  }
}

template <typename T>
bool ReadVector(BufferReader& r, std::vector<T>& out) {
  uint64_t n = r.ReadU64();
  if (r.remaining() < n * sizeof(T)) {
    return false;
  }
  out.resize(n);
  if (n > 0) {
    r.ReadBytes(out.data(), n * sizeof(T));
  }
  return true;
}
}  // namespace

Buffer SerializeBatchIpc(const RecordBatch& batch) {
  BufferBuilder b;
  b.Reserve(batch.ByteSize() + 64);
  b.AppendU32(kIpcMagic);
  b.AppendU32(static_cast<uint32_t>(batch.num_columns()));
  b.AppendU64(static_cast<uint64_t>(batch.num_rows()));
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const Field& field = batch.schema().field(c);
    b.AppendLengthPrefixedString(field.name);
    b.AppendU8(static_cast<uint8_t>(field.type));
    const Column& col = batch.column(c);
    AppendVector(b, col.validity());
    switch (field.type) {
      case DataType::kInt64:
        AppendVector(b, col.ints());
        break;
      case DataType::kFloat64:
        AppendVector(b, col.doubles());
        break;
      case DataType::kBool:
        AppendVector(b, col.bools());
        break;
      case DataType::kString:
        AppendVector(b, col.string_offsets());
        AppendVector(b, col.string_bytes());
        break;
    }
  }
  return b.Finish();
}

Result<RecordBatch> DeserializeBatchIpc(const Buffer& buffer) {
  BufferReader r(buffer);
  if (r.ReadU32() != kIpcMagic) {
    return Status::InvalidArgument("not an IPC-encoded batch (bad magic)");
  }
  uint32_t num_columns = r.ReadU32();
  uint64_t num_rows = r.ReadU64();
  std::vector<Field> fields;
  std::vector<Column> columns;
  fields.reserve(num_columns);
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name = r.ReadLengthPrefixedString();
    DataType type = static_cast<DataType>(r.ReadU8());
    std::vector<uint8_t> validity;
    if (!ReadVector(r, validity)) {
      return Status::InvalidArgument("truncated IPC batch (validity)");
    }
    Column col;
    switch (type) {
      case DataType::kInt64: {
        std::vector<int64_t> v;
        if (!ReadVector(r, v) || v.size() != num_rows) {
          return Status::InvalidArgument("truncated IPC batch (int64 column)");
        }
        col = Column::MakeInt64(std::move(v), std::move(validity));
        break;
      }
      case DataType::kFloat64: {
        std::vector<double> v;
        if (!ReadVector(r, v) || v.size() != num_rows) {
          return Status::InvalidArgument("truncated IPC batch (float column)");
        }
        col = Column::MakeFloat64(std::move(v), std::move(validity));
        break;
      }
      case DataType::kBool: {
        std::vector<uint8_t> v;
        if (!ReadVector(r, v) || v.size() != num_rows) {
          return Status::InvalidArgument("truncated IPC batch (bool column)");
        }
        col = Column::MakeBool(std::move(v), std::move(validity));
        break;
      }
      case DataType::kString: {
        std::vector<uint32_t> offsets;
        std::vector<char> bytes;
        if (!ReadVector(r, offsets) || !ReadVector(r, bytes) ||
            offsets.size() != num_rows + 1) {
          return Status::InvalidArgument("truncated IPC batch (string column)");
        }
        // Validate the wire offsets, then adopt the buffers directly instead
        // of re-appending every row through a builder.
        if (offsets.front() != 0 || offsets.back() != bytes.size()) {
          return Status::InvalidArgument("corrupt IPC batch (string offsets)");
        }
        for (uint64_t i = 0; i < num_rows; ++i) {
          if (offsets[i] > offsets[i + 1]) {
            return Status::InvalidArgument("corrupt IPC batch (string offsets)");
          }
        }
        col = Column::MakeStringFromOffsets(std::move(offsets), std::move(bytes),
                                            std::move(validity));
        break;
      }
      default:
        return Status::InvalidArgument("unknown column type tag in IPC batch");
    }
    fields.push_back({std::move(name), type});
    columns.push_back(std::move(col));
  }
  return RecordBatch::Make(Schema(std::move(fields)), std::move(columns));
}

Buffer SerializeTensor(const Tensor& tensor) {
  BufferBuilder b;
  b.AppendU32(kTensorMagic);
  AppendVector(b, tensor.shape());
  AppendVector(b, tensor.data());
  return b.Finish();
}

Result<Tensor> DeserializeTensor(const Buffer& buffer) {
  BufferReader r(buffer);
  if (r.ReadU32() != kTensorMagic) {
    return Status::InvalidArgument("not a tensor buffer (bad magic)");
  }
  std::vector<int64_t> shape;
  std::vector<double> data;
  if (!ReadVector(r, shape) || !ReadVector(r, data)) {
    return Status::InvalidArgument("truncated tensor buffer");
  }
  return Tensor::FromData(std::move(shape), std::move(data));
}

Buffer SerializeBatchRowCodec(const RecordBatch& batch) {
  BufferBuilder b;
  b.AppendU32(kRowMagic);
  b.AppendU32(static_cast<uint32_t>(batch.num_columns()));
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    b.AppendLengthPrefixedString(batch.schema().field(c).name);
    b.AppendU8(static_cast<uint8_t>(batch.schema().field(c).type));
  }
  b.AppendU64(static_cast<uint64_t>(batch.num_rows()));
  // Row-major, one tagged value at a time: the marshalling cost this format
  // exists to demonstrate.
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const Column& col = batch.column(c);
      if (col.IsNull(r)) {
        b.AppendU8(0);  // null tag
        continue;
      }
      b.AppendU8(1 + static_cast<uint8_t>(col.type()));
      switch (col.type()) {
        case DataType::kInt64:
          b.AppendI64(col.Int64At(r));
          break;
        case DataType::kFloat64:
          b.AppendF64(col.Float64At(r));
          break;
        case DataType::kBool:
          b.AppendU8(col.BoolAt(r) ? 1 : 0);
          break;
        case DataType::kString:
          b.AppendLengthPrefixedString(col.StringAt(r));
          break;
      }
    }
  }
  return b.Finish();
}

Result<RecordBatch> DeserializeBatchRowCodec(const Buffer& buffer) {
  BufferReader r(buffer);
  if (r.ReadU32() != kRowMagic) {
    return Status::InvalidArgument("not a row-codec batch (bad magic)");
  }
  uint32_t num_columns = r.ReadU32();
  std::vector<Field> fields;
  fields.reserve(num_columns);
  std::vector<ColumnBuilder> builders;
  builders.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name = r.ReadLengthPrefixedString();
    DataType type = static_cast<DataType>(r.ReadU8());
    fields.push_back({std::move(name), type});
    builders.emplace_back(type);
  }
  uint64_t num_rows = r.ReadU64();
  for (uint64_t row = 0; row < num_rows; ++row) {
    for (uint32_t c = 0; c < num_columns; ++c) {
      uint8_t tag = r.ReadU8();
      if (tag == 0) {
        builders[c].AppendNull();
        continue;
      }
      DataType type = static_cast<DataType>(tag - 1);
      if (type != fields[c].type) {
        return Status::InvalidArgument("row codec tag mismatch at row " +
                                       std::to_string(row));
      }
      switch (type) {
        case DataType::kInt64:
          builders[c].AppendInt64(r.ReadI64());
          break;
        case DataType::kFloat64:
          builders[c].AppendFloat64(r.ReadF64());
          break;
        case DataType::kBool:
          builders[c].AppendBool(r.ReadU8() != 0);
          break;
        case DataType::kString:
          builders[c].AppendString(r.ReadLengthPrefixedString());
          break;
      }
    }
  }
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (auto& builder : builders) {
    columns.push_back(builder.Finish());
  }
  return RecordBatch::Make(Schema(std::move(fields)), std::move(columns));
}

}  // namespace skadi
