#include "src/format/serde.h"

#include <cstring>

namespace skadi {

namespace {
constexpr uint32_t kIpcMagic = 0x53414232;     // "SAB2" (v2: aligned, zero-copy)
constexpr uint32_t kRowMagic = 0x53524F57;     // "SROW"
constexpr uint32_t kTensorMagic = 0x53544E32;  // "STN2"

// Column buffers are laid out at 64-byte-aligned offsets behind the header,
// so deserialized views are cache-line aligned and safely aligned for any
// fixed-width element type (the Buffer base itself is at least
// max_align_t-aligned).
constexpr size_t kBufferAlign = 64;

constexpr size_t AlignUp(size_t n) {
  return (n + kBufferAlign - 1) & ~(kBufferAlign - 1);
}

// Wire descriptor of one column buffer: absolute offset + byte length.
struct BufDesc {
  uint64_t offset = 0;
  uint64_t size = 0;
};

void AppendDesc(BufferBuilder& b, const BufDesc& d) {
  b.AppendU64(d.offset);
  b.AppendU64(d.size);
}

BufDesc ReadDesc(BufferReader& r) {
  BufDesc d;
  d.offset = r.ReadU64();
  d.size = r.ReadU64();
  return d;
}

// Bounds-checks a descriptor against the enclosing buffer and returns the
// start of its bytes (nullptr for an empty descriptor).
const uint8_t* DescPtr(const Buffer& buffer, const BufDesc& d, bool* ok) {
  if (d.size == 0) {
    return nullptr;
  }
  if (d.offset > buffer.size() || d.size > buffer.size() - d.offset) {
    *ok = false;
    return nullptr;
  }
  return buffer.data() + d.offset;
}

// True when `p` may be read as T[] without misaligned access. Buffers built
// by SerializeBatchIpc always pass; hand-sliced buffers may not, in which
// case the deserializer falls back to copying that column.
template <typename T>
bool AlignedFor(const uint8_t* p) {
  return (reinterpret_cast<uintptr_t>(p) & (alignof(T) - 1)) == 0;
}

// Serialization layout pass: assigns aligned offsets to `n` buffers of the
// given sizes, starting after the header.
class LayoutPlanner {
 public:
  explicit LayoutPlanner(size_t header_size) : cursor_(header_size) {}

  BufDesc Place(size_t size) {
    BufDesc d;
    if (size == 0) {
      return d;  // empty buffers take no space and carry no offset
    }
    d.offset = AlignUp(cursor_);
    d.size = size;
    cursor_ = static_cast<size_t>(d.offset) + size;
    return d;
  }

  size_t total() const { return cursor_; }

 private:
  size_t cursor_;
};

// Appends the buffer bytes for one descriptor: pad to its offset, copy.
void EmitBuffer(BufferBuilder& b, const BufDesc& d, const void* data) {
  if (d.size == 0) {
    return;
  }
  b.AppendZeros(static_cast<size_t>(d.offset) - b.size());
  b.AppendBytes(data, static_cast<size_t>(d.size));
}
}  // namespace

// --- IPC (columnar, aligned, zero-copy on read) path ---
//
// Wire layout:
//   header:
//     u32 magic ("SAB2"), u32 num_columns, u64 num_rows, u64 total_size
//     per column: name (u32 len + bytes), u8 type, u64 null_count,
//                 validity desc, then 1 (fixed-width) or 2 (string
//                 offsets+bytes) data descs; each desc = u64 offset,u64 size
//   data region: each column buffer at a 64-byte-aligned absolute offset.
// Encoding is one layout memcpy per buffer; decoding builds Columns whose
// storage views alias the input Buffer (zero copies for fixed-width data,
// validity bitmaps, string offsets and string bytes alike).
Buffer SerializeBatchIpc(const RecordBatch& batch) {
  const size_t cols = batch.num_columns();
  // Header size: fixed preamble + per-column metadata.
  size_t header_size = 4 + 4 + 8 + 8;
  for (size_t c = 0; c < cols; ++c) {
    const Field& field = batch.schema().field(c);
    header_size += 4 + field.name.size() + 1 + 8;  // name, type, null_count
    header_size += 16;                             // validity desc
    header_size += field.type == DataType::kString ? 32 : 16;
  }

  // Layout pass: aligned offsets for every column buffer, in column order.
  LayoutPlanner planner(header_size);
  struct ColPlan {
    BufDesc validity;
    BufDesc data;   // fixed-width values, or string offsets
    BufDesc extra;  // string bytes
  };
  std::vector<ColPlan> plans(cols);
  for (size_t c = 0; c < cols; ++c) {
    const Column& col = batch.column(c);
    plans[c].validity = planner.Place(col.validity().size());
    switch (col.type()) {
      case DataType::kInt64:
        plans[c].data = planner.Place(col.ints().size() * sizeof(int64_t));
        break;
      case DataType::kFloat64:
        plans[c].data = planner.Place(col.doubles().size() * sizeof(double));
        break;
      case DataType::kBool:
        plans[c].data = planner.Place(col.bools().size());
        break;
      case DataType::kString:
        plans[c].data = planner.Place(col.string_offsets().size() * sizeof(uint32_t));
        plans[c].extra = planner.Place(col.string_bytes().size());
        break;
    }
  }

  // Emit pass.
  BufferBuilder b;
  b.Reserve(planner.total());
  b.AppendU32(kIpcMagic);
  b.AppendU32(static_cast<uint32_t>(cols));
  b.AppendU64(static_cast<uint64_t>(batch.num_rows()));
  b.AppendU64(planner.total());
  for (size_t c = 0; c < cols; ++c) {
    const Field& field = batch.schema().field(c);
    const Column& col = batch.column(c);
    b.AppendLengthPrefixedString(field.name);
    b.AppendU8(static_cast<uint8_t>(field.type));
    b.AppendU64(static_cast<uint64_t>(col.null_count()));
    AppendDesc(b, plans[c].validity);
    AppendDesc(b, plans[c].data);
    if (field.type == DataType::kString) {
      AppendDesc(b, plans[c].extra);
    }
  }
  for (size_t c = 0; c < cols; ++c) {
    const Column& col = batch.column(c);
    EmitBuffer(b, plans[c].validity, col.validity().data());
    switch (col.type()) {
      case DataType::kInt64:
        EmitBuffer(b, plans[c].data, col.ints().data());
        break;
      case DataType::kFloat64:
        EmitBuffer(b, plans[c].data, col.doubles().data());
        break;
      case DataType::kBool:
        EmitBuffer(b, plans[c].data, col.bools().data());
        break;
      case DataType::kString:
        EmitBuffer(b, plans[c].data, col.string_offsets().data());
        EmitBuffer(b, plans[c].extra, col.string_bytes().data());
        break;
    }
  }
  return b.Finish();
}

namespace {
// Copy fallback for a misaligned fixed-width buffer (hand-sliced input).
template <typename T>
std::vector<T> CopyAs(const uint8_t* p, size_t bytes) {
  std::vector<T> out(bytes / sizeof(T));
  if (bytes > 0) {
    std::memcpy(out.data(), p, bytes);
  }
  return out;
}
}  // namespace

namespace {
// Minimum wire bytes one IPC column header occupies (empty name): u32 name
// length + u8 type + u64 null count + two {offset,size} descriptors.
constexpr uint64_t kMinIpcColumnHeaderBytes = 4 + 1 + 8 + 16 + 16;
// Minimum wire bytes one row-codec column header occupies (empty name).
constexpr uint64_t kMinRowColumnHeaderBytes = 4 + 1;
}  // namespace

Result<RecordBatch> DeserializeBatchIpc(const Buffer& buffer) {
  BufferReader r(buffer);
  if (r.ReadU32() != kIpcMagic) {
    return Status::InvalidArgument("not an IPC-encoded batch (bad magic)");
  }
  const uint32_t num_columns = r.ReadU32();
  const uint64_t num_rows = r.ReadU64();
  const uint64_t total_size = r.ReadU64();
  if (total_size > buffer.size()) {
    return Status::Corruption("truncated IPC batch (header claims " +
                              std::to_string(total_size) + " bytes, have " +
                              std::to_string(buffer.size()) + ")");
  }
  // A lying column count must not size allocations: every column needs at
  // least kMinIpcColumnHeaderBytes of header, so bound it by the bytes
  // actually present before the reserve() below.
  if (num_columns > r.remaining() / kMinIpcColumnHeaderBytes) {
    return Status::Corruption("corrupt IPC batch (column count " +
                              std::to_string(num_columns) +
                              " exceeds wire bytes)");
  }
  // Any non-empty column stores at least one byte per row, so a row count
  // beyond the buffer size can only pass the per-column size checks via
  // unsigned multiplication wrap-around (e.g. 2^61 rows * 8 bytes == 0).
  // Reject it here so the arithmetic below cannot overflow.
  if (num_columns > 0 && num_rows > buffer.size()) {
    return Status::Corruption("corrupt IPC batch (row count " +
                              std::to_string(num_rows) + " exceeds wire bytes)");
  }

  std::vector<Field> fields;
  std::vector<Column> columns;
  fields.reserve(num_columns);
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    if (!r.ReadLengthPrefixedString(name)) {
      return Status::Corruption("corrupt IPC batch (column name)");
    }
    DataType type = static_cast<DataType>(r.ReadU8());
    const uint64_t null_count = r.ReadU64();
    const BufDesc validity_desc = ReadDesc(r);
    const BufDesc data_desc = ReadDesc(r);
    BufDesc extra_desc;
    if (type == DataType::kString) {
      extra_desc = ReadDesc(r);
    }
    if (r.corrupt()) {
      return Status::Corruption("truncated IPC batch (column header)");
    }
    if (null_count > num_rows) {
      return Status::Corruption("corrupt IPC batch (null count)");
    }

    bool bounds_ok = true;
    const uint8_t* validity = DescPtr(buffer, validity_desc, &bounds_ok);
    const uint8_t* data = DescPtr(buffer, data_desc, &bounds_ok);
    const uint8_t* extra = DescPtr(buffer, extra_desc, &bounds_ok);
    if (!bounds_ok) {
      return Status::Corruption("truncated IPC batch (buffer out of bounds)");
    }
    if (validity_desc.size != 0 && validity_desc.size != num_rows) {
      return Status::Corruption("corrupt IPC batch (validity size)");
    }
    if (null_count > 0 && validity == nullptr && num_rows > 0) {
      return Status::Corruption("corrupt IPC batch (nulls without bitmap)");
    }

    // Views alias the input; the Column holds buffer.owner() so the bytes
    // outlive the store entry / the caller's Buffer handle.
    Column col;
    switch (type) {
      case DataType::kInt64: {
        if (data_desc.size != num_rows * sizeof(int64_t)) {
          return Status::Corruption("corrupt IPC batch (int64 column size)");
        }
        if (data == nullptr || AlignedFor<int64_t>(data)) {
          col = Column::ViewInt64(buffer.owner(), reinterpret_cast<const int64_t*>(data),
                                  static_cast<int64_t>(num_rows), validity,
                                  static_cast<int64_t>(null_count));
        } else {
          col = Column::MakeInt64(
              CopyAs<int64_t>(data, data_desc.size),
              validity ? CopyAs<uint8_t>(validity, num_rows) : std::vector<uint8_t>{});
        }
        break;
      }
      case DataType::kFloat64: {
        if (data_desc.size != num_rows * sizeof(double)) {
          return Status::Corruption("corrupt IPC batch (float column size)");
        }
        if (data == nullptr || AlignedFor<double>(data)) {
          col = Column::ViewFloat64(buffer.owner(), reinterpret_cast<const double*>(data),
                                    static_cast<int64_t>(num_rows), validity,
                                    static_cast<int64_t>(null_count));
        } else {
          col = Column::MakeFloat64(
              CopyAs<double>(data, data_desc.size),
              validity ? CopyAs<uint8_t>(validity, num_rows) : std::vector<uint8_t>{});
        }
        break;
      }
      case DataType::kBool: {
        if (data_desc.size != num_rows) {
          return Status::Corruption("corrupt IPC batch (bool column size)");
        }
        col = Column::ViewBool(buffer.owner(), data, static_cast<int64_t>(num_rows),
                               validity, static_cast<int64_t>(null_count));
        break;
      }
      case DataType::kString: {
        if (data_desc.size != (num_rows + 1) * sizeof(uint32_t)) {
          return Status::Corruption("corrupt IPC batch (string offsets size)");
        }
        if (data != nullptr && !AlignedFor<uint32_t>(data)) {
          // Misaligned hand-built input: copy this column.
          std::vector<uint32_t> offsets = CopyAs<uint32_t>(data, data_desc.size);
          if (offsets.front() != 0 || offsets.back() != extra_desc.size) {
            return Status::Corruption("corrupt IPC batch (string offsets)");
          }
          for (uint64_t i = 0; i < num_rows; ++i) {
            if (offsets[i] > offsets[i + 1]) {
              return Status::Corruption("corrupt IPC batch (string offsets)");
            }
          }
          std::vector<char> bytes(extra_desc.size);
          if (extra != nullptr) {
            std::memcpy(bytes.data(), extra, extra_desc.size);
          }
          col = Column::MakeStringFromOffsets(
              std::move(offsets), std::move(bytes),
              validity ? CopyAs<uint8_t>(validity, num_rows) : std::vector<uint8_t>{});
          break;
        }
        const uint32_t* offsets = reinterpret_cast<const uint32_t*>(data);
        // Validate the wire offsets once; afterwards the column views them
        // in place (no per-row rebuild, no byte copies).
        if (offsets == nullptr) {
          return Status::Corruption("corrupt IPC batch (missing string offsets)");
        }
        if (offsets[0] != 0 || offsets[num_rows] != extra_desc.size) {
          return Status::Corruption("corrupt IPC batch (string offsets)");
        }
        for (uint64_t i = 0; i < num_rows; ++i) {
          if (offsets[i] > offsets[i + 1]) {
            return Status::Corruption("corrupt IPC batch (string offsets)");
          }
        }
        col = Column::ViewString(buffer.owner(), offsets, static_cast<int64_t>(num_rows),
                                 reinterpret_cast<const char*>(extra), validity,
                                 static_cast<int64_t>(null_count));
        break;
      }
      default:
        return Status::Corruption("unknown column type tag in IPC batch");
    }
    fields.push_back({std::move(name), type});
    columns.push_back(std::move(col));
  }
  return RecordBatch::Make(Schema(std::move(fields)), std::move(columns));
}

// Tensor wire layout mirrors the batch: small header (magic, rank, dims,
// element count, data desc), then the element buffer at an aligned offset;
// deserialized tensors view it in place.
Buffer SerializeTensor(const Tensor& tensor) {
  const size_t header_size = 4 + 8 + tensor.shape().size() * 8 + 16;
  LayoutPlanner planner(header_size);
  ArrayView<double> data = tensor.data();
  BufDesc data_desc = planner.Place(data.size() * sizeof(double));

  BufferBuilder b;
  b.Reserve(planner.total());
  b.AppendU32(kTensorMagic);
  b.AppendU64(tensor.shape().size());
  for (int64_t d : tensor.shape()) {
    b.AppendI64(d);
  }
  AppendDesc(b, data_desc);
  EmitBuffer(b, data_desc, data.data());
  return b.Finish();
}

Result<Tensor> DeserializeTensor(const Buffer& buffer) {
  BufferReader r(buffer);
  if (r.ReadU32() != kTensorMagic) {
    return Status::InvalidArgument("not a tensor buffer (bad magic)");
  }
  const uint64_t rank = r.ReadU64();
  if (rank > 8 || r.remaining() < rank * 8) {
    return Status::Corruption("corrupt tensor buffer (rank)");
  }
  std::vector<int64_t> shape(rank);
  for (uint64_t i = 0; i < rank; ++i) {
    shape[i] = r.ReadI64();
  }
  const BufDesc data_desc = ReadDesc(r);
  if (r.corrupt()) {
    return Status::Corruption("truncated tensor buffer");
  }
  bool bounds_ok = true;
  const uint8_t* data = DescPtr(buffer, data_desc, &bounds_ok);
  if (!bounds_ok || data_desc.size % sizeof(double) != 0) {
    return Status::Corruption("truncated tensor buffer (data)");
  }
  const size_t n = data_desc.size / sizeof(double);
  // The shape must describe exactly the elements on the wire: negative or
  // overflowing dimensions would let At()/cols() index outside the aliased
  // view even though the descriptor itself is in bounds.
  uint64_t elements = 1;
  bool has_zero_dim = false;
  for (int64_t d : shape) {
    if (d < 0) {
      return Status::Corruption("corrupt tensor buffer (negative dimension)");
    }
    if (d == 0) {
      has_zero_dim = true;
      continue;
    }
    if (elements > (uint64_t{1} << 62) / static_cast<uint64_t>(d)) {
      return Status::Corruption("corrupt tensor buffer (shape overflow)");
    }
    elements *= static_cast<uint64_t>(d);
  }
  if (has_zero_dim) {
    elements = 0;
  }
  if (elements != n) {
    return Status::Corruption("corrupt tensor buffer (shape/element mismatch)");
  }
  if (data == nullptr || AlignedFor<double>(data)) {
    return Tensor::View(std::move(shape), buffer.owner(),
                        reinterpret_cast<const double*>(data), n);
  }
  return Tensor::FromData(std::move(shape), CopyAs<double>(data, data_desc.size));
}

// --- Row-marshalling baseline (unchanged format) ---

Buffer SerializeBatchRowCodec(const RecordBatch& batch) {
  BufferBuilder b;
  b.AppendU32(kRowMagic);
  b.AppendU32(static_cast<uint32_t>(batch.num_columns()));
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    b.AppendLengthPrefixedString(batch.schema().field(c).name);
    b.AppendU8(static_cast<uint8_t>(batch.schema().field(c).type));
  }
  b.AppendU64(static_cast<uint64_t>(batch.num_rows()));
  // Row-major, one tagged value at a time: the marshalling cost this format
  // exists to demonstrate.
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const Column& col = batch.column(c);
      if (col.IsNull(r)) {
        b.AppendU8(0);  // null tag
        continue;
      }
      b.AppendU8(1 + static_cast<uint8_t>(col.type()));
      switch (col.type()) {
        case DataType::kInt64:
          b.AppendI64(col.Int64At(r));
          break;
        case DataType::kFloat64:
          b.AppendF64(col.Float64At(r));
          break;
        case DataType::kBool:
          b.AppendU8(col.BoolAt(r) ? 1 : 0);
          break;
        case DataType::kString:
          b.AppendLengthPrefixedString(col.StringAt(r));
          break;
      }
    }
  }
  return b.Finish();
}

Result<RecordBatch> DeserializeBatchRowCodec(const Buffer& buffer) {
  BufferReader r(buffer);
  if (r.ReadU32() != kRowMagic) {
    return Status::InvalidArgument("not a row-codec batch (bad magic)");
  }
  uint32_t num_columns = r.ReadU32();
  // Bound the count by the bytes present before sizing any allocation
  // (a lying header must not drive reserve()).
  if (num_columns > r.remaining() / kMinRowColumnHeaderBytes) {
    return Status::Corruption("corrupt row-codec batch (column count " +
                              std::to_string(num_columns) +
                              " exceeds wire bytes)");
  }
  std::vector<Field> fields;
  fields.reserve(num_columns);
  std::vector<ColumnBuilder> builders;
  builders.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    if (!r.ReadLengthPrefixedString(name)) {
      return Status::Corruption("corrupt row-codec batch (column name)");
    }
    DataType type = static_cast<DataType>(r.ReadU8());
    fields.push_back({std::move(name), type});
    builders.emplace_back(type);
  }
  uint64_t num_rows = r.ReadU64();
  if (num_columns == 0) {
    // No columns means the row loop decodes nothing per iteration, so a
    // lying row count would spin without ever latching the corruption flag.
    return RecordBatch::Make(Schema(std::move(fields)), {});
  }
  // Every row encodes at least one tag byte per column; a row count beyond
  // that is wire data lying about its own length.
  if (num_rows > r.remaining() / num_columns) {
    return Status::Corruption("corrupt row-codec batch (row count " +
                              std::to_string(num_rows) + " exceeds wire bytes)");
  }
  std::string scratch;
  for (uint64_t row = 0; row < num_rows; ++row) {
    for (uint32_t c = 0; c < num_columns; ++c) {
      uint8_t tag = r.ReadU8();
      if (tag == 0) {
        builders[c].AppendNull();
        continue;
      }
      DataType type = static_cast<DataType>(tag - 1);
      if (type != fields[c].type) {
        return Status::InvalidArgument("row codec tag mismatch at row " +
                                       std::to_string(row));
      }
      switch (type) {
        case DataType::kInt64:
          builders[c].AppendInt64(r.ReadI64());
          break;
        case DataType::kFloat64:
          builders[c].AppendFloat64(r.ReadF64());
          break;
        case DataType::kBool:
          builders[c].AppendBool(r.ReadU8() != 0);
          break;
        case DataType::kString:
          if (!r.ReadLengthPrefixedString(scratch)) {
            return Status::Corruption("corrupt row-codec batch (string at row " +
                                      std::to_string(row) + ")");
          }
          builders[c].AppendString(scratch);
          break;
      }
    }
    if (r.corrupt()) {
      return Status::Corruption("truncated row-codec batch at row " +
                                std::to_string(row));
    }
  }
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (auto& builder : builders) {
    columns.push_back(builder.Finish());
  }
  return RecordBatch::Make(Schema(std::move(fields)), std::move(columns));
}

}  // namespace skadi
