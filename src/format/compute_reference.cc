// Row-at-a-time scalar reference kernels: the original implementations,
// retained verbatim (modulo the shared partition hash) as parity oracles for
// the vectorized/morsel-parallel kernels in compute.cc and as baselines for
// bench_kernels. Deliberately naive: one heap-allocated string key per row.
#include <algorithm>
#include <limits>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/format/compute.h"
#include "src/format/row_hash.h"

namespace skadi {
namespace reference {

namespace {

// Stable textual encoding of one row's key-column values; distinct value
// tuples produce distinct encodings (null gets its own tag).
std::string EncodeKey(const std::vector<const Column*>& keys, int64_t row) {
  std::string out;
  for (const Column* col : keys) {
    if (col->IsNull(row)) {
      out += "\x01N;";
      continue;
    }
    switch (col->type()) {
      case DataType::kInt64:
        out += "i" + std::to_string(col->Int64At(row)) + ";";
        break;
      case DataType::kFloat64:
        out += "f" + std::to_string(col->Float64At(row)) + ";";
        break;
      case DataType::kString:
        out += "s";
        out += col->StringAt(row);
        out += '\x02';
        break;
      case DataType::kBool:
        out += col->BoolAt(row) ? "b1;" : "b0;";
        break;
    }
  }
  return out;
}

Result<std::vector<const Column*>> ResolveColumns(const RecordBatch& batch,
                                                  const std::vector<std::string>& names) {
  std::vector<const Column*> cols;
  cols.reserve(names.size());
  for (const std::string& name : names) {
    const Column* col = batch.ColumnByName(name);
    if (col == nullptr) {
      return Status::NotFound("column '" + name + "' not in schema " +
                              batch.schema().ToString());
    }
    cols.push_back(col);
  }
  return cols;
}

struct AggState {
  int64_t count = 0;       // non-null values seen (or rows for kCount)
  int64_t isum = 0;        // int64 sum
  double fsum = 0.0;       // float sum (also for mean)
  int64_t imin = std::numeric_limits<int64_t>::max();
  int64_t imax = std::numeric_limits<int64_t>::min();
  double fmin = std::numeric_limits<double>::infinity();
  double fmax = -std::numeric_limits<double>::infinity();
  std::string smin;
  std::string smax;
  bool has_value = false;
};

DataType AggOutputType(AggKind kind, DataType input) {
  switch (kind) {
    case AggKind::kCount:
      return DataType::kInt64;
    case AggKind::kMean:
      return DataType::kFloat64;
    case AggKind::kSum:
      return input == DataType::kFloat64 ? DataType::kFloat64 : DataType::kInt64;
    case AggKind::kMin:
    case AggKind::kMax:
      return input;
  }
  return DataType::kInt64;
}

}  // namespace

Result<RecordBatch> FilterBatch(const RecordBatch& batch, const Expr& predicate) {
  SKADI_ASSIGN_OR_RETURN(Column mask, EvalExpr(predicate, batch));
  if (mask.type() != DataType::kBool) {
    return Status::InvalidArgument("filter predicate must be bool, got " +
                                   std::string(DataTypeName(mask.type())));
  }
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < mask.length(); ++i) {
    if (!mask.IsNull(i) && mask.BoolAt(i)) {
      indices.push_back(i);
    }
  }
  return batch.Take(indices);
}

Result<std::vector<RecordBatch>> HashPartitionBatch(
    const RecordBatch& batch, const std::vector<std::string>& key_columns,
    uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  SKADI_ASSIGN_OR_RETURN(std::vector<const Column*> keys,
                         ResolveColumns(batch, key_columns));
  std::vector<std::vector<int64_t>> partition_rows(num_partitions);
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    // Shares HashKeyRow with the vectorized kernel so both implementations
    // assign every row to the same partition.
    uint32_t p = PartitionOf(HashKeyRow(keys, r), num_partitions);
    partition_rows[p].push_back(r);
  }
  std::vector<RecordBatch> out;
  out.reserve(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    out.push_back(batch.Take(partition_rows[p]));
  }
  return out;
}

Result<RecordBatch> GroupAggregateBatch(const RecordBatch& batch,
                                        const std::vector<std::string>& group_by,
                                        const std::vector<AggregateSpec>& aggregates) {
  SKADI_ASSIGN_OR_RETURN(std::vector<const Column*> group_cols,
                         ResolveColumns(batch, group_by));

  // Resolve aggregate input columns (kCount over "*"/empty needs none).
  std::vector<const Column*> agg_cols(aggregates.size(), nullptr);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggregateSpec& spec = aggregates[a];
    if (spec.kind == AggKind::kCount && (spec.column.empty() || spec.column == "*")) {
      continue;
    }
    const Column* col = batch.ColumnByName(spec.column);
    if (col == nullptr) {
      return Status::NotFound("aggregate column '" + spec.column + "' not in schema " +
                              batch.schema().ToString());
    }
    if (spec.kind != AggKind::kCount && spec.kind != AggKind::kMin &&
        spec.kind != AggKind::kMax && col->type() != DataType::kInt64 &&
        col->type() != DataType::kFloat64) {
      return Status::InvalidArgument("aggregate " + std::string(AggKindName(spec.kind)) +
                                     " requires a numeric column, '" + spec.column +
                                     "' is " + std::string(DataTypeName(col->type())));
    }
    agg_cols[a] = col;
  }

  // group key -> (group ordinal, representative row).
  std::unordered_map<std::string, size_t> group_index;
  std::vector<int64_t> group_rep_row;
  std::vector<std::vector<AggState>> states;  // [group][aggregate]

  auto group_of = [&](int64_t row) -> size_t {
    std::string key = group_by.empty() ? std::string("*") : EncodeKey(group_cols, row);
    auto it = group_index.find(key);
    if (it != group_index.end()) {
      return it->second;
    }
    size_t g = group_rep_row.size();
    group_index.emplace(std::move(key), g);
    group_rep_row.push_back(row);
    states.emplace_back(aggregates.size());
    return g;
  };

  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    size_t g = group_of(r);
    for (size_t a = 0; a < aggregates.size(); ++a) {
      AggState& st = states[g][a];
      const Column* col = agg_cols[a];
      if (col == nullptr) {  // COUNT(*)
        st.count++;
        continue;
      }
      if (col->IsNull(r)) {
        continue;
      }
      st.count++;
      st.has_value = true;
      switch (col->type()) {
        case DataType::kInt64: {
          int64_t v = col->Int64At(r);
          st.isum += v;
          st.fsum += static_cast<double>(v);
          st.imin = std::min(st.imin, v);
          st.imax = std::max(st.imax, v);
          break;
        }
        case DataType::kFloat64: {
          double v = col->Float64At(r);
          st.fsum += v;
          st.fmin = std::min(st.fmin, v);
          st.fmax = std::max(st.fmax, v);
          break;
        }
        case DataType::kString: {
          std::string v(col->StringAt(r));
          if (st.count == 1) {
            st.smin = v;
            st.smax = v;
          } else {
            st.smin = std::min(st.smin, v);
            st.smax = std::max(st.smax, v);
          }
          break;
        }
        case DataType::kBool:
          break;  // min/max over bool unsupported; treated as no-op
      }
    }
  }

  // Global aggregation over an empty input still emits one row of zeros.
  if (group_by.empty() && group_rep_row.empty()) {
    group_rep_row.push_back(-1);
    states.emplace_back(aggregates.size());
  }

  const size_t num_groups = group_rep_row.size();

  std::vector<Field> fields;
  std::vector<Column> columns;

  // Group key columns, in declaration order.
  for (size_t k = 0; k < group_by.size(); ++k) {
    const Column* src = group_cols[k];
    ColumnBuilder builder(src->type());
    for (size_t g = 0; g < num_groups; ++g) {
      builder.AppendFrom(*src, group_rep_row[g]);
    }
    fields.push_back({group_by[k], src->type()});
    columns.push_back(builder.Finish());
  }

  // Aggregate output columns.
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggregateSpec& spec = aggregates[a];
    DataType in_type = agg_cols[a] == nullptr ? DataType::kInt64 : agg_cols[a]->type();
    DataType out_type = AggOutputType(spec.kind, in_type);
    ColumnBuilder builder(out_type);
    for (size_t g = 0; g < num_groups; ++g) {
      const AggState& st = states[g][a];
      switch (spec.kind) {
        case AggKind::kCount:
          builder.AppendInt64(st.count);
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            builder.AppendNull();
          } else if (out_type == DataType::kFloat64) {
            builder.AppendFloat64(st.fsum);
          } else {
            builder.AppendInt64(st.isum);
          }
          break;
        case AggKind::kMean:
          if (st.count == 0) {
            builder.AppendNull();
          } else {
            builder.AppendFloat64(st.fsum / static_cast<double>(st.count));
          }
          break;
        case AggKind::kMin:
        case AggKind::kMax: {
          if (st.count == 0) {
            builder.AppendNull();
            break;
          }
          bool is_min = spec.kind == AggKind::kMin;
          switch (in_type) {
            case DataType::kInt64:
              builder.AppendInt64(is_min ? st.imin : st.imax);
              break;
            case DataType::kFloat64:
              builder.AppendFloat64(is_min ? st.fmin : st.fmax);
              break;
            case DataType::kString:
              builder.AppendString(is_min ? st.smin : st.smax);
              break;
            case DataType::kBool:
              builder.AppendNull();
              break;
          }
          break;
        }
      }
    }
    fields.push_back({spec.name, out_type});
    columns.push_back(builder.Finish());
  }

  return RecordBatch::Make(Schema(std::move(fields)), std::move(columns));
}

Result<RecordBatch> HashJoinBatch(const RecordBatch& left, const RecordBatch& right,
                                  const std::vector<std::string>& left_keys,
                                  const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join requires equal non-empty key lists");
  }
  SKADI_ASSIGN_OR_RETURN(std::vector<const Column*> lkeys,
                         ResolveColumns(left, left_keys));
  SKADI_ASSIGN_OR_RETURN(std::vector<const Column*> rkeys,
                         ResolveColumns(right, right_keys));
  for (size_t k = 0; k < lkeys.size(); ++k) {
    if (lkeys[k]->type() != rkeys[k]->type()) {
      return Status::InvalidArgument("join key type mismatch on '" + left_keys[k] + "'");
    }
  }

  auto row_has_null_key = [](const std::vector<const Column*>& key_cols, int64_t row) {
    for (const Column* c : key_cols) {
      if (c->IsNull(row)) {
        return true;
      }
    }
    return false;
  };

  // Build side: right.
  std::unordered_multimap<std::string, int64_t> build;
  build.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    if (row_has_null_key(rkeys, r)) {
      continue;
    }
    build.emplace(EncodeKey(rkeys, r), r);
  }

  // Probe side: left.
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    if (row_has_null_key(lkeys, l)) {
      continue;
    }
    auto [begin, end] = build.equal_range(EncodeKey(lkeys, l));
    for (auto it = begin; it != end; ++it) {
      left_rows.push_back(l);
      right_rows.push_back(it->second);
    }
  }

  // Assemble output: all left columns, right columns minus keys.
  RecordBatch left_out = left.Take(left_rows);
  RecordBatch right_gathered = right.Take(right_rows);

  std::vector<Field> fields(left_out.schema().fields());
  std::vector<Column> columns;
  columns.reserve(left_out.num_columns());
  for (size_t c = 0; c < left_out.num_columns(); ++c) {
    columns.push_back(left_out.column(c));
  }
  for (size_t c = 0; c < right_gathered.num_columns(); ++c) {
    const std::string& name = right.schema().field(c).name;
    if (std::find(right_keys.begin(), right_keys.end(), name) != right_keys.end()) {
      continue;
    }
    std::string out_name = name;
    if (left.schema().IndexOf(out_name).has_value()) {
      out_name += "_r";
    }
    fields.push_back({out_name, right_gathered.column(c).type()});
    columns.push_back(right_gathered.column(c));
  }
  return RecordBatch::Make(Schema(std::move(fields)), std::move(columns));
}

}  // namespace reference
}  // namespace skadi
