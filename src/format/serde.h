// Two serialization paths for RecordBatch / Tensor, reproducing the paper's
// caching-layer claim (2): "a shared format enables functions running on
// heterogeneous devices to exchange data without costly data marshalling".
//
//   * IPC path (the Arrow stand-in): column buffers are laid out at
//     64-byte-aligned offsets behind a descriptor header. Encoding is one
//     block memcpy per buffer; decoding is ZERO-copy — the returned batch's
//     columns (fixed-width values, validity bitmaps, string offsets/bytes)
//     are views into the input Buffer, kept alive by its refcounted owner.
//     Misaligned hand-built inputs fall back to copying per column.
//   * Row-marshalling path (the baseline): every row is encoded value by
//     value with type tags — the per-value branching and string handling a
//     naive cross-system exchange pays.
//
// Both decoders distinguish malformed framing (kInvalidArgument: wrong
// magic, tag mismatch) from truncated/lying wire data (kCorruption).
// bench_a3_format measures the paths side by side.
#ifndef SRC_FORMAT_SERDE_H_
#define SRC_FORMAT_SERDE_H_

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/format/record_batch.h"
#include "src/format/tensor.h"

namespace skadi {

// --- IPC (columnar block-copy) path ---

Buffer SerializeBatchIpc(const RecordBatch& batch);
Result<RecordBatch> DeserializeBatchIpc(const Buffer& buffer);

Buffer SerializeTensor(const Tensor& tensor);
Result<Tensor> DeserializeTensor(const Buffer& buffer);

// --- Row-marshalling baseline ---

Buffer SerializeBatchRowCodec(const RecordBatch& batch);
Result<RecordBatch> DeserializeBatchRowCodec(const Buffer& buffer);

}  // namespace skadi

#endif  // SRC_FORMAT_SERDE_H_
