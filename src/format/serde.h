// Two serialization paths for RecordBatch / Tensor, reproducing the paper's
// caching-layer claim (2): "a shared format enables functions running on
// heterogeneous devices to exchange data without costly data marshalling".
//
//   * IPC path (the Arrow stand-in): the columnar buffers are block-copied
//     with a small header. Encoding cost is O(bytes) memcpy.
//   * Row-marshalling path (the baseline): every row is encoded value by
//     value with type tags — the per-value branching and string handling a
//     naive cross-system exchange pays.
//
// bench_a3_format measures the two side by side.
#ifndef SRC_FORMAT_SERDE_H_
#define SRC_FORMAT_SERDE_H_

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/format/record_batch.h"
#include "src/format/tensor.h"

namespace skadi {

// --- IPC (columnar block-copy) path ---

Buffer SerializeBatchIpc(const RecordBatch& batch);
Result<RecordBatch> DeserializeBatchIpc(const Buffer& buffer);

Buffer SerializeTensor(const Tensor& tensor);
Result<Tensor> DeserializeTensor(const Buffer& buffer);

// --- Row-marshalling baseline ---

Buffer SerializeBatchRowCodec(const RecordBatch& batch);
Result<RecordBatch> DeserializeBatchRowCodec(const Buffer& buffer);

}  // namespace skadi

#endif  // SRC_FORMAT_SERDE_H_
