#include "src/format/row_hash.h"

#include <cstring>

namespace skadi {

namespace {

inline uint64_t Float64Bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Mixes one column's value at `row` into `h`. Kept in one place so the
// row-at-a-time and column-at-a-time paths cannot drift apart.
inline uint64_t MixColumnValue(uint64_t h, const Column& col, int64_t row) {
  if (col.IsNull(row)) {
    return HashCombine(h, kNullKeyHash);
  }
  switch (col.type()) {
    case DataType::kInt64:
      return HashCombine(h, HashI64(col.Int64At(row)));
    case DataType::kFloat64:
      return HashCombine(h, MixU64(Float64Bits(col.Float64At(row))));
    case DataType::kString:
      return HashCombine(h, HashString(col.StringAt(row)));
    case DataType::kBool:
      return HashCombine(h, HashI64(col.BoolAt(row) ? 1 : 0));
  }
  return h;
}

}  // namespace

uint64_t HashKeyRow(const std::vector<const Column*>& keys, int64_t row) {
  uint64_t h = kFnvOffsetBasis;
  for (const Column* col : keys) {
    h = MixColumnValue(h, *col, row);
  }
  return h;
}

void HashKeyRows(const std::vector<const Column*>& keys, int64_t begin, int64_t end,
                 uint64_t* out) {
  const int64_t n = end - begin;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = kFnvOffsetBasis;
  }
  // Column-at-a-time: one type dispatch per column, tight typed loops inside.
  for (const Column* col : keys) {
    const bool has_nulls = col->has_nulls();
    const uint8_t* validity = has_nulls ? col->validity().data() : nullptr;
    switch (col->type()) {
      case DataType::kInt64: {
        const int64_t* values = col->ints().data();
        for (int64_t i = 0; i < n; ++i) {
          int64_t r = begin + i;
          uint64_t vh = (validity != nullptr && validity[r] == 0) ? kNullKeyHash
                                                                  : HashI64(values[r]);
          out[i] = HashCombine(out[i], vh);
        }
        break;
      }
      case DataType::kFloat64: {
        const double* values = col->doubles().data();
        for (int64_t i = 0; i < n; ++i) {
          int64_t r = begin + i;
          uint64_t vh = (validity != nullptr && validity[r] == 0)
                            ? kNullKeyHash
                            : MixU64(Float64Bits(values[r]));
          out[i] = HashCombine(out[i], vh);
        }
        break;
      }
      case DataType::kString: {
        for (int64_t i = 0; i < n; ++i) {
          int64_t r = begin + i;
          uint64_t vh = (validity != nullptr && validity[r] == 0)
                            ? kNullKeyHash
                            : HashString(col->StringAt(r));
          out[i] = HashCombine(out[i], vh);
        }
        break;
      }
      case DataType::kBool: {
        const uint8_t* values = col->bools().data();
        for (int64_t i = 0; i < n; ++i) {
          int64_t r = begin + i;
          uint64_t vh = (validity != nullptr && validity[r] == 0)
                            ? kNullKeyHash
                            : HashI64(values[r] != 0 ? 1 : 0);
          out[i] = HashCombine(out[i], vh);
        }
        break;
      }
    }
  }
}

bool KeyRowsEqual(const std::vector<const Column*>& a, int64_t ra,
                  const std::vector<const Column*>& b, int64_t rb) {
  for (size_t k = 0; k < a.size(); ++k) {
    const Column& ca = *a[k];
    const Column& cb = *b[k];
    bool na = ca.IsNull(ra);
    bool nb = cb.IsNull(rb);
    if (na || nb) {
      if (na != nb) {
        return false;
      }
      continue;
    }
    switch (ca.type()) {
      case DataType::kInt64:
        if (ca.Int64At(ra) != cb.Int64At(rb)) {
          return false;
        }
        break;
      case DataType::kFloat64:
        if (Float64Bits(ca.Float64At(ra)) != Float64Bits(cb.Float64At(rb))) {
          return false;
        }
        break;
      case DataType::kString:
        if (ca.StringAt(ra) != cb.StringAt(rb)) {
          return false;
        }
        break;
      case DataType::kBool:
        if (ca.BoolAt(ra) != cb.BoolAt(rb)) {
          return false;
        }
        break;
    }
  }
  return true;
}

}  // namespace skadi
