// Relational compute kernels over RecordBatch. These are the "handcraft ops"
// (Figure 2's cudf/misc op boxes) that FlowGraph vertices and IR lowering
// bind to; they run on host threads while the hw::CostModel charges the
// placed device's modelled time.
#ifndef SRC_FORMAT_COMPUTE_H_
#define SRC_FORMAT_COMPUTE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/format/expr.h"
#include "src/format/record_batch.h"

namespace skadi {

// Rows where `predicate` evaluates to true (nulls drop).
Result<RecordBatch> FilterBatch(const RecordBatch& batch, const Expr& predicate);

struct ProjectionSpec {
  ExprPtr expr;
  std::string name;  // output column name
};

// Computes one output column per projection.
Result<RecordBatch> ProjectBatch(const RecordBatch& batch,
                                 const std::vector<ProjectionSpec>& projections);

// Splits rows into `num_partitions` batches by hashing the key columns.
// Deterministic: same inputs always land in the same partition (shuffle
// producers and consumers rely on this).
Result<std::vector<RecordBatch>> HashPartitionBatch(
    const RecordBatch& batch, const std::vector<std::string>& key_columns,
    uint32_t num_partitions);

enum class AggKind { kCount, kSum, kMin, kMax, kMean };

std::string_view AggKindName(AggKind kind);

struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  std::string column;  // input column (ignored for kCount)
  std::string name;    // output column name
};

// Hash group-by aggregation. With empty `group_by`, produces one global row.
// Nulls in aggregated columns are skipped; null group keys form their own
// group. Output schema: group columns then one column per aggregate
// (kCount -> int64; kSum -> input type; kMin/kMax -> input type;
// kMean -> float64).
Result<RecordBatch> GroupAggregateBatch(const RecordBatch& batch,
                                        const std::vector<std::string>& group_by,
                                        const std::vector<AggregateSpec>& aggregates);

struct SortKey {
  std::string column;
  bool ascending = true;
};

// Stable sort by the given keys. Nulls order first ascending, last descending.
Result<RecordBatch> SortBatch(const RecordBatch& batch, const std::vector<SortKey>& keys);

// Inner hash join on equality of the key column pairs. Output columns: all
// left columns, then right columns except its keys; right column names that
// clash with left names get a "_r" suffix. Null keys never match.
Result<RecordBatch> HashJoinBatch(const RecordBatch& left, const RecordBatch& right,
                                  const std::vector<std::string>& left_keys,
                                  const std::vector<std::string>& right_keys);

// First `n` rows.
RecordBatch LimitBatch(const RecordBatch& batch, int64_t n);

}  // namespace skadi

#endif  // SRC_FORMAT_COMPUTE_H_
