// Relational compute kernels over RecordBatch. These are the "handcraft ops"
// (Figure 2's cudf/misc op boxes) that FlowGraph vertices and IR lowering
// bind to; they run on host threads while the hw::CostModel charges the
// placed device's modelled time.
//
// The primary kernels are vectorized: inner loops run over raw typed column
// arrays with validity handled outside the loop, and keyed kernels hash raw
// values directly (src/format/row_hash.h) instead of materializing a string
// key per row. Passing ComputeOptions{num_threads > 1} additionally engages
// morsel-driven intra-kernel parallelism (src/common/morsel_pool.h): the row
// range is split into morsels, workers keep thread-local partial state, and
// partials are merged deterministically.
//
// The original row-at-a-time implementations are retained in the
// skadi::reference namespace as the oracle for parity tests and as the
// baseline for bench_kernels.
#ifndef SRC_FORMAT_COMPUTE_H_
#define SRC_FORMAT_COMPUTE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/format/expr.h"
#include "src/format/record_batch.h"

namespace skadi {

// Intra-kernel execution knobs. Defaults reproduce the sequential behavior;
// raylets hand their worker budget down through TaskContext::compute_threads
// and task bodies forward it here.
struct ComputeOptions {
  // Max workers (including the calling thread) a kernel may use.
  int num_threads = 1;
  // Rows per morsel for work-stealing loops.
  int64_t morsel_rows = 64 * 1024;
  // Batches smaller than this stay on the single-threaded path even when
  // num_threads > 1 (fan-out overhead dominates below it).
  int64_t parallel_threshold_rows = 32 * 1024;

  // True when this kernel invocation may engage the morsel pool for `rows`.
  bool ShouldParallelize(int64_t rows) const {
    return num_threads > 1 && rows >= parallel_threshold_rows;
  }
};

// Rows where `predicate` evaluates to true (nulls drop).
Result<RecordBatch> FilterBatch(const RecordBatch& batch, const Expr& predicate,
                                const ComputeOptions& options = {});

struct ProjectionSpec {
  ExprPtr expr;
  std::string name;  // output column name
};

// Computes one output column per projection.
Result<RecordBatch> ProjectBatch(const RecordBatch& batch,
                                 const std::vector<ProjectionSpec>& projections,
                                 const ComputeOptions& options = {});

// Splits rows into `num_partitions` batches by hashing the key columns.
// Deterministic: same inputs always land in the same partition (shuffle
// producers and consumers rely on this), independent of options.num_threads.
Result<std::vector<RecordBatch>> HashPartitionBatch(
    const RecordBatch& batch, const std::vector<std::string>& key_columns,
    uint32_t num_partitions, const ComputeOptions& options = {});

enum class AggKind { kCount, kSum, kMin, kMax, kMean };

std::string_view AggKindName(AggKind kind);

struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  std::string column;  // input column (ignored for kCount)
  std::string name;    // output column name
};

// Hash group-by aggregation. With empty `group_by`, produces one global row.
// Nulls in aggregated columns are skipped; null group keys form their own
// group. Output schema: group columns then one column per aggregate
// (kCount -> int64; kSum -> input type; kMin/kMax -> input type;
// kMean -> float64). Single-threaded runs emit groups in first-occurrence
// order; morsel-parallel runs emit a deterministic chunk-merge order (float
// sums may differ in the last bits from the sequential accumulation order).
Result<RecordBatch> GroupAggregateBatch(const RecordBatch& batch,
                                        const std::vector<std::string>& group_by,
                                        const std::vector<AggregateSpec>& aggregates,
                                        const ComputeOptions& options = {});

struct SortKey {
  std::string column;
  bool ascending = true;
};

// Stable sort by the given keys. Nulls order first ascending, last descending.
Result<RecordBatch> SortBatch(const RecordBatch& batch, const std::vector<SortKey>& keys);

// Inner hash join on equality of the key column pairs. Output columns: all
// left columns, then right columns except its keys; right column names that
// clash with left names get a "_r" suffix. Null keys never match.
Result<RecordBatch> HashJoinBatch(const RecordBatch& left, const RecordBatch& right,
                                  const std::vector<std::string>& left_keys,
                                  const std::vector<std::string>& right_keys,
                                  const ComputeOptions& options = {});

// First `n` rows.
RecordBatch LimitBatch(const RecordBatch& batch, int64_t n);

// Retained row-at-a-time scalar implementations (src/format/
// compute_reference.cc). Same contracts as the vectorized kernels above,
// including identical hash-partition assignment; used as parity oracles and
// benchmark baselines. Do not use on hot paths.
namespace reference {

Result<RecordBatch> FilterBatch(const RecordBatch& batch, const Expr& predicate);

Result<std::vector<RecordBatch>> HashPartitionBatch(
    const RecordBatch& batch, const std::vector<std::string>& key_columns,
    uint32_t num_partitions);

Result<RecordBatch> GroupAggregateBatch(const RecordBatch& batch,
                                        const std::vector<std::string>& group_by,
                                        const std::vector<AggregateSpec>& aggregates);

Result<RecordBatch> HashJoinBatch(const RecordBatch& left, const RecordBatch& right,
                                  const std::vector<std::string>& left_keys,
                                  const std::vector<std::string>& right_keys);

}  // namespace reference

}  // namespace skadi

#endif  // SRC_FORMAT_COMPUTE_H_
