#include "src/ir/passes.h"

#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "src/hw/cost_model.h"
#include "src/ir/dialects.h"

namespace skadi {

namespace {

// Uses of each value across ops and returns.
std::unordered_map<ValueId, int> CountUses(const IrFunction& fn) {
  std::unordered_map<ValueId, int> uses;
  for (const IrOp& op : fn.ops()) {
    for (ValueId operand : op.operands) {
      uses[operand] += 1;
    }
  }
  for (ValueId ret : fn.returns()) {
    uses[ret] += 1;
  }
  return uses;
}

void ReplaceUses(IrFunction& fn, ValueId from, ValueId to) {
  for (IrOp& op : fn.mutable_ops()) {
    for (ValueId& operand : op.operands) {
      if (operand == from) {
        operand = to;
      }
    }
  }
  std::vector<ValueId> returns = fn.returns();
  for (ValueId& ret : returns) {
    if (ret == from) {
      ret = to;
    }
  }
  fn.SetReturns(std::move(returns));
}

// Stable fingerprint of an attribute value, for CSE keys.
std::string AttrFingerprint(const IrAttr& attr) {
  std::ostringstream os;
  if (const int64_t* i = std::get_if<int64_t>(&attr)) {
    os << "i" << *i;
  } else if (const double* d = std::get_if<double>(&attr)) {
    os << "d" << *d;
  } else if (const bool* b = std::get_if<bool>(&attr)) {
    os << "b" << *b;
  } else if (const std::string* s = std::get_if<std::string>(&attr)) {
    os << "s" << *s;
  } else if (const ExprPtr* e = std::get_if<ExprPtr>(&attr)) {
    os << "e" << (*e == nullptr ? "null" : (*e)->ToString());
  } else if (const auto* names = std::get_if<std::vector<std::string>>(&attr)) {
    os << "n";
    for (const std::string& n : *names) {
      os << n << ",";
    }
  } else if (const auto* projections = std::get_if<std::vector<ProjectionSpec>>(&attr)) {
    os << "p";
    for (const ProjectionSpec& p : *projections) {
      os << p.name << "=" << (p.expr ? p.expr->ToString() : "null") << ",";
    }
  } else if (const auto* aggs = std::get_if<std::vector<AggregateSpec>>(&attr)) {
    os << "a";
    for (const AggregateSpec& a : *aggs) {
      os << AggKindName(a.kind) << "(" << a.column << ")as" << a.name << ",";
    }
  } else if (const auto* keys = std::get_if<std::vector<SortKey>>(&attr)) {
    os << "k";
    for (const SortKey& k : *keys) {
      os << k.column << (k.ascending ? "^" : "v") << ",";
    }
  }
  return os.str();
}

std::string OpFingerprint(const IrOp& op) {
  std::ostringstream os;
  os << op.opcode << "(";
  for (ValueId operand : op.operands) {
    os << operand.value() << ",";
  }
  os << ")";
  for (const auto& [key, attr] : op.attrs) {
    os << key << "=" << AttrFingerprint(attr) << ";";
  }
  return os.str();
}

// Finds the defining op index of a value; -1 for params.
int DefIndex(const IrFunction& fn, ValueId value) {
  const auto& ops = fn.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    for (ValueId result : ops[i].results) {
      if (result == value) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

}  // namespace

Status RunDce(IrFunction& fn, PassStats* stats) {
  bool changed = true;
  while (changed) {
    changed = false;
    auto uses = CountUses(fn);
    auto& ops = fn.mutable_ops();
    for (auto it = ops.begin(); it != ops.end();) {
      bool used = false;
      for (ValueId result : it->results) {
        if (uses[result] > 0) {
          used = true;
          break;
        }
      }
      if (used) {
        ++it;
      } else {
        it = ops.erase(it);
        changed = true;
        if (stats != nullptr) {
          stats->ops_removed += 1;
        }
      }
    }
  }
  return fn.Verify();
}

Status RunCse(IrFunction& fn, PassStats* stats) {
  std::unordered_map<std::string, ValueId> seen;
  auto& ops = fn.mutable_ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    std::string key = OpFingerprint(ops[i]);
    auto it = seen.find(key);
    if (it == seen.end()) {
      seen.emplace(std::move(key), ops[i].results[0]);
      continue;
    }
    ReplaceUses(fn, ops[i].results[0], it->second);
    if (stats != nullptr) {
      stats->ops_removed += 1;
    }
  }
  return RunDce(fn, nullptr);
}

Status RunMergeFilters(IrFunction& fn, PassStats* stats) {
  auto uses = CountUses(fn);
  auto& ops = fn.mutable_ops();
  for (IrOp& op : ops) {
    if (op.opcode != kOpRelFilter) {
      continue;
    }
    // Is the operand itself a single-use filter?
    int def = DefIndex(fn, op.operands[0]);
    if (def < 0) {
      continue;
    }
    IrOp& producer = ops[static_cast<size_t>(def)];
    if (producer.opcode != kOpRelFilter || uses[op.operands[0]] != 1) {
      continue;
    }
    auto inner = producer.GetAttr<ExprPtr>("pred");
    auto outer = op.GetAttr<ExprPtr>("pred");
    if (!inner.ok() || !outer.ok()) {
      continue;
    }
    op.attrs["pred"] = IrAttr(Expr::Binary(BinaryOp::kAnd, *inner, *outer));
    op.operands[0] = producer.operands[0];
    if (stats != nullptr) {
      stats->ops_fused += 1;
    }
    uses = CountUses(fn);
  }
  return RunDce(fn, nullptr);
}

Status RunFuseElementwise(IrFunction& fn, PassStats* stats) {
  // Collapse maximal chains a -> b -> c of unary elementwise ops where every
  // intermediate has exactly one use.
  bool changed = true;
  while (changed) {
    changed = false;
    auto uses = CountUses(fn);
    auto& ops = fn.mutable_ops();
    for (IrOp& op : ops) {
      bool op_fusable =
          (IsElementwiseTensorOp(op.opcode) && op.operands.size() == 1) ||
          op.opcode == kOpFusedElementwise;
      if (!op_fusable) {
        continue;
      }
      int def = DefIndex(fn, op.operands[0]);
      if (def < 0) {
        continue;
      }
      IrOp& producer = ops[static_cast<size_t>(def)];
      bool producer_fusable =
          (IsElementwiseTensorOp(producer.opcode) && producer.operands.size() == 1) ||
          producer.opcode == kOpFusedElementwise;
      if (!producer_fusable || uses[op.operands[0]] != 1) {
        continue;
      }

      auto step_of = [](const IrOp& o) -> std::vector<std::string> {
        if (o.opcode == kOpFusedElementwise) {
          auto steps = o.GetAttr<std::vector<std::string>>("sub_ops");
          return steps.ok() ? *steps : std::vector<std::string>{};
        }
        if (o.opcode == kOpTensorScale) {
          auto factor = o.GetAttr<double>("factor");
          return {std::string(kOpTensorScale) + ":" +
                  std::to_string(factor.ok() ? *factor : 1.0)};
        }
        return {o.opcode};
      };

      std::vector<std::string> steps = step_of(producer);
      std::vector<std::string> tail = step_of(op);
      steps.insert(steps.end(), tail.begin(), tail.end());

      op.opcode = kOpFusedElementwise;
      op.attrs.clear();
      op.attrs["sub_ops"] = IrAttr(std::move(steps));
      op.operands[0] = producer.operands[0];
      if (stats != nullptr) {
        stats->ops_fused += 1;
      }
      changed = true;
      break;  // op list mutated; recompute indices
    }
    if (changed) {
      SKADI_RETURN_IF_ERROR(RunDce(fn, nullptr));
    }
  }
  return fn.Verify();
}

Status RunFuseFilterProject(IrFunction& fn, PassStats* stats) {
  auto uses = CountUses(fn);
  auto& ops = fn.mutable_ops();
  for (IrOp& op : ops) {
    if (op.opcode != kOpRelProject) {
      continue;
    }
    int def = DefIndex(fn, op.operands[0]);
    if (def < 0) {
      continue;
    }
    IrOp& producer = ops[static_cast<size_t>(def)];
    if (producer.opcode != kOpRelFilter || uses[op.operands[0]] != 1) {
      continue;
    }
    auto pred = producer.GetAttr<ExprPtr>("pred");
    if (!pred.ok()) {
      continue;
    }
    op.opcode = kOpFusedFilterProject;
    op.attrs["pred"] = IrAttr(*pred);
    op.operands[0] = producer.operands[0];
    if (stats != nullptr) {
      stats->ops_fused += 1;
    }
    uses = CountUses(fn);
  }
  return RunDce(fn, nullptr);
}

Status RunSelectBackends(IrFunction& fn, const std::vector<DeviceKind>& available,
                         int64_t assumed_bytes) {
  if (available.empty()) {
    return Status::InvalidArgument("no backends available");
  }
  // Canonical device presets per kind (ids are irrelevant for estimation).
  auto spec_of = [](DeviceKind kind) -> DeviceSpec {
    switch (kind) {
      case DeviceKind::kCpu:
        return MakeCpuDevice("sel-cpu");
      case DeviceKind::kGpu:
        return MakeGpuDevice("sel-gpu");
      case DeviceKind::kFpga:
        return MakeFpgaDevice("sel-fpga");
      case DeviceKind::kDpu:
        return MakeDpuDevice("sel-dpu");
      case DeviceKind::kMemoryBlade:
        return MakeMemoryBladeDevice("sel-blade", 0);
    }
    return MakeCpuDevice("sel-cpu");
  };

  for (IrOp& op : fn.mutable_ops()) {
    OpClass op_class = OpClassOf(op.opcode);
    DeviceKind best = available[0];
    int64_t best_cost = CostModel::EstimateNanos(spec_of(best), op_class, assumed_bytes);
    for (size_t i = 1; i < available.size(); ++i) {
      int64_t cost =
          CostModel::EstimateNanos(spec_of(available[i]), op_class, assumed_bytes);
      if (cost < best_cost) {
        best_cost = cost;
        best = available[i];
      }
    }
    op.backend = best;
  }
  return Status::Ok();
}

PassManager& PassManager::Add(const std::string& pass_name) {
  passes_.push_back(pass_name);
  return *this;
}

PassManager PassManager::StandardPipeline() {
  PassManager pm;
  pm.Add("cse").Add("merge-filters").Add("fuse-filter-project").Add("fuse-elementwise").Add("dce");
  return pm;
}

Status PassManager::Run(IrFunction& fn, PassStats* stats) const {
  for (const std::string& pass : passes_) {
    if (pass == "dce") {
      SKADI_RETURN_IF_ERROR(RunDce(fn, stats));
    } else if (pass == "cse") {
      SKADI_RETURN_IF_ERROR(RunCse(fn, stats));
    } else if (pass == "merge-filters") {
      SKADI_RETURN_IF_ERROR(RunMergeFilters(fn, stats));
    } else if (pass == "fuse-elementwise") {
      SKADI_RETURN_IF_ERROR(RunFuseElementwise(fn, stats));
    } else if (pass == "fuse-filter-project") {
      SKADI_RETURN_IF_ERROR(RunFuseFilterProject(fn, stats));
    } else {
      return Status::NotFound("unknown pass '" + pass + "'");
    }
  }
  return Status::Ok();
}

}  // namespace skadi
