#include "src/ir/ir.h"

#include <set>
#include <sstream>

namespace skadi {

std::string_view IrTypeKindName(IrTypeKind kind) {
  switch (kind) {
    case IrTypeKind::kTable:
      return "table";
    case IrTypeKind::kTensor:
      return "tensor";
    case IrTypeKind::kScalar:
      return "scalar";
  }
  return "?";
}

ValueId IrFunction::AddParam(IrType type) {
  ValueId id = ValueId::Next();
  params_.push_back(id);
  types_[id] = type;
  return id;
}

ValueId IrFunction::Emit(std::string opcode, std::vector<ValueId> operands,
                         IrType result_type, std::map<std::string, IrAttr> attrs) {
  IrOp op;
  op.opcode = std::move(opcode);
  op.operands = std::move(operands);
  op.attrs = std::move(attrs);
  ValueId result = ValueId::Next();
  op.results.push_back(result);
  types_[result] = result_type;
  ops_.push_back(std::move(op));
  return result;
}

Result<IrType> IrFunction::TypeOf(ValueId value) const {
  auto it = types_.find(value);
  if (it == types_.end()) {
    return Status::NotFound("value " + value.ToString() + " not in function '" + name_ +
                            "'");
  }
  return it->second;
}

bool IrFunction::IsParam(ValueId value) const {
  for (ValueId p : params_) {
    if (p == value) {
      return true;
    }
  }
  return false;
}

Status IrFunction::Verify() const {
  std::set<ValueId> defined(params_.begin(), params_.end());
  if (defined.size() != params_.size()) {
    return Status::Internal("function '" + name_ + "': duplicate parameter ids");
  }
  for (const IrOp& op : ops_) {
    for (ValueId operand : op.operands) {
      if (defined.count(operand) == 0) {
        return Status::FailedPrecondition("function '" + name_ + "': op '" + op.opcode +
                                          "' uses undefined value " + operand.ToString());
      }
    }
    for (ValueId result : op.results) {
      if (!defined.insert(result).second) {
        return Status::FailedPrecondition("function '" + name_ + "': value " +
                                          result.ToString() + " defined twice");
      }
      if (types_.count(result) == 0) {
        return Status::Internal("function '" + name_ + "': result " + result.ToString() +
                                " has no type");
      }
    }
  }
  for (ValueId ret : returns_) {
    if (defined.count(ret) == 0) {
      return Status::FailedPrecondition("function '" + name_ + "': returns undefined value " +
                                        ret.ToString());
    }
  }
  return Status::Ok();
}

Result<IrFunction> IrFunction::Compose(const IrFunction& producer,
                                       const IrFunction& consumer,
                                       size_t consumer_param_index) {
  if (producer.returns_.size() != 1) {
    return Status::InvalidArgument("Compose requires a single-return producer, '" +
                                   producer.name_ + "' returns " +
                                   std::to_string(producer.returns_.size()));
  }
  if (consumer_param_index >= consumer.params_.size()) {
    return Status::InvalidArgument("consumer param index out of range");
  }
  ValueId replaced = consumer.params_[consumer_param_index];
  ValueId replacement = producer.returns_[0];

  IrFunction merged(producer.name_ + "+" + consumer.name_);
  merged.params_ = producer.params_;
  for (size_t i = 0; i < consumer.params_.size(); ++i) {
    if (i != consumer_param_index) {
      merged.params_.push_back(consumer.params_[i]);
    }
  }
  merged.types_ = producer.types_;
  merged.types_.insert(consumer.types_.begin(), consumer.types_.end());
  merged.ops_ = producer.ops_;
  for (IrOp op : consumer.ops_) {
    for (ValueId& operand : op.operands) {
      if (operand == replaced) {
        operand = replacement;
      }
    }
    merged.ops_.push_back(std::move(op));
  }
  merged.returns_ = consumer.returns_;
  for (ValueId& ret : merged.returns_) {
    if (ret == replaced) {
      ret = replacement;
    }
  }
  SKADI_RETURN_IF_ERROR(merged.Verify());
  return merged;
}

std::string IrFunction::ToString() const {
  std::ostringstream os;
  os << "func @" << name_ << "(";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << params_[i] << ": " << IrTypeKindName(types_.at(params_[i]).kind);
  }
  os << ") {\n";
  for (const IrOp& op : ops_) {
    os << "  ";
    for (size_t i = 0; i < op.results.size(); ++i) {
      if (i > 0) {
        os << ", ";
      }
      os << op.results[i];
    }
    os << " = " << op.opcode << "(";
    for (size_t i = 0; i < op.operands.size(); ++i) {
      if (i > 0) {
        os << ", ";
      }
      os << op.operands[i];
    }
    os << ")";
    if (op.backend.has_value()) {
      os << " on " << DeviceKindName(*op.backend);
    }
    os << "\n";
  }
  os << "  return ";
  for (size_t i = 0; i < returns_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << returns_[i];
  }
  os << "\n}";
  return os.str();
}

}  // namespace skadi
