#include "src/ir/dialects.h"

namespace skadi {

ValueId EmitFilter(IrFunction& fn, ValueId input, ExprPtr predicate) {
  return fn.Emit(kOpRelFilter, {input}, IrType::Table(), {{"pred", IrAttr(predicate)}});
}

ValueId EmitProject(IrFunction& fn, ValueId input,
                    std::vector<ProjectionSpec> projections) {
  return fn.Emit(kOpRelProject, {input}, IrType::Table(),
                 {{"projections", IrAttr(std::move(projections))}});
}

ValueId EmitAggregate(IrFunction& fn, ValueId input, std::vector<std::string> group_by,
                      std::vector<AggregateSpec> aggregates) {
  return fn.Emit(kOpRelAggregate, {input}, IrType::Table(),
                 {{"group_by", IrAttr(std::move(group_by))},
                  {"aggs", IrAttr(std::move(aggregates))}});
}

ValueId EmitJoin(IrFunction& fn, ValueId left, ValueId right,
                 std::vector<std::string> left_keys, std::vector<std::string> right_keys) {
  return fn.Emit(kOpRelJoin, {left, right}, IrType::Table(),
                 {{"left_keys", IrAttr(std::move(left_keys))},
                  {"right_keys", IrAttr(std::move(right_keys))}});
}

ValueId EmitSort(IrFunction& fn, ValueId input, std::vector<SortKey> keys) {
  return fn.Emit(kOpRelSort, {input}, IrType::Table(), {{"keys", IrAttr(std::move(keys))}});
}

ValueId EmitLimit(IrFunction& fn, ValueId input, int64_t n) {
  return fn.Emit(kOpRelLimit, {input}, IrType::Table(), {{"n", IrAttr(n)}});
}

ValueId EmitUnion(IrFunction& fn, ValueId a, ValueId b) {
  return fn.Emit(kOpRelUnion, {a, b}, IrType::Table());
}

ValueId EmitMatmul(IrFunction& fn, ValueId a, ValueId b) {
  return fn.Emit(kOpTensorMatmul, {a, b}, IrType::Tensor());
}

ValueId EmitAdd(IrFunction& fn, ValueId a, ValueId b) {
  return fn.Emit(kOpTensorAdd, {a, b}, IrType::Tensor());
}

ValueId EmitSub(IrFunction& fn, ValueId a, ValueId b) {
  return fn.Emit(kOpTensorSub, {a, b}, IrType::Tensor());
}

ValueId EmitMul(IrFunction& fn, ValueId a, ValueId b) {
  return fn.Emit(kOpTensorMul, {a, b}, IrType::Tensor());
}

ValueId EmitScale(IrFunction& fn, ValueId a, double factor) {
  return fn.Emit(kOpTensorScale, {a}, IrType::Tensor(), {{"factor", IrAttr(factor)}});
}

ValueId EmitRelu(IrFunction& fn, ValueId a) {
  return fn.Emit(kOpTensorRelu, {a}, IrType::Tensor());
}

ValueId EmitSigmoid(IrFunction& fn, ValueId a) {
  return fn.Emit(kOpTensorSigmoid, {a}, IrType::Tensor());
}

ValueId EmitTranspose(IrFunction& fn, ValueId a) {
  return fn.Emit(kOpTensorTranspose, {a}, IrType::Tensor());
}

ValueId EmitReduceMean(IrFunction& fn, ValueId a) {
  return fn.Emit(kOpTensorReduceMean, {a}, IrType::Scalar());
}

ValueId EmitAddRow(IrFunction& fn, ValueId a, ValueId row) {
  return fn.Emit(kOpTensorAddRow, {a, row}, IrType::Tensor());
}

OpClass OpClassOf(const std::string& opcode) {
  if (opcode == kOpRelFilter) {
    return OpClass::kFilter;
  }
  if (opcode == kOpRelProject) {
    return OpClass::kProject;
  }
  if (opcode == kOpRelAggregate) {
    return OpClass::kAggregate;
  }
  if (opcode == kOpRelJoin) {
    return OpClass::kJoin;
  }
  if (opcode == kOpRelSort) {
    return OpClass::kSort;
  }
  if (opcode == kOpRelLimit || opcode == kOpRelUnion) {
    return OpClass::kScan;
  }
  if (opcode == kOpTensorMatmul) {
    return OpClass::kMatmul;
  }
  if (opcode == kOpTensorReduceMean) {
    return OpClass::kReduce;
  }
  if (opcode == kOpFusedFilterProject) {
    return OpClass::kFilter;
  }
  if (IsElementwiseTensorOp(opcode) || opcode == kOpFusedElementwise ||
      opcode == kOpTensorTranspose || opcode == kOpTensorAddRow) {
    return OpClass::kElementwise;
  }
  return OpClass::kGeneric;
}

bool IsElementwiseTensorOp(const std::string& opcode) {
  return opcode == kOpTensorAdd || opcode == kOpTensorSub || opcode == kOpTensorMul ||
         opcode == kOpTensorScale || opcode == kOpTensorRelu ||
         opcode == kOpTensorSigmoid;
}

}  // namespace skadi
