// Dialect definitions: opcode constants, typed emit helpers, and the mapping
// from opcodes to hw::OpClass used by cost-model-driven backend selection.
//
//   rel.*    — relational algebra over RecordBatch (scan comes in as a param)
//   tensor.* — dense linear algebra for the ML pipeline
//   fused.*  — produced by the fusion pass, never emitted by frontends
#ifndef SRC_IR_DIALECTS_H_
#define SRC_IR_DIALECTS_H_

#include "src/ir/ir.h"

namespace skadi {

// Relational dialect.
inline constexpr const char* kOpRelFilter = "rel.filter";        // attrs: pred
inline constexpr const char* kOpRelProject = "rel.project";      // attrs: projections
inline constexpr const char* kOpRelAggregate = "rel.aggregate";  // attrs: group_by, aggs
inline constexpr const char* kOpRelJoin = "rel.join";            // attrs: left_keys, right_keys
inline constexpr const char* kOpRelSort = "rel.sort";            // attrs: keys
inline constexpr const char* kOpRelLimit = "rel.limit";          // attrs: n
inline constexpr const char* kOpRelUnion = "rel.union";          // concat two tables

// Tensor dialect.
inline constexpr const char* kOpTensorMatmul = "tensor.matmul";
inline constexpr const char* kOpTensorAdd = "tensor.add";
inline constexpr const char* kOpTensorSub = "tensor.sub";
inline constexpr const char* kOpTensorMul = "tensor.mul";
inline constexpr const char* kOpTensorScale = "tensor.scale";      // attrs: factor
inline constexpr const char* kOpTensorRelu = "tensor.relu";
inline constexpr const char* kOpTensorSigmoid = "tensor.sigmoid";
inline constexpr const char* kOpTensorTranspose = "tensor.transpose";
inline constexpr const char* kOpTensorReduceMean = "tensor.reduce_mean";  // -> scalar
inline constexpr const char* kOpTensorAddRow = "tensor.add_row";  // bias broadcast

// Fusion products.
inline constexpr const char* kOpFusedElementwise = "fused.elementwise";  // attrs: sub_ops
inline constexpr const char* kOpFusedFilterProject = "fused.filter_project";

// Emit helpers (thin wrappers that set types/attrs consistently).
ValueId EmitFilter(IrFunction& fn, ValueId input, ExprPtr predicate);
ValueId EmitProject(IrFunction& fn, ValueId input, std::vector<ProjectionSpec> projections);
ValueId EmitAggregate(IrFunction& fn, ValueId input, std::vector<std::string> group_by,
                      std::vector<AggregateSpec> aggregates);
ValueId EmitJoin(IrFunction& fn, ValueId left, ValueId right,
                 std::vector<std::string> left_keys, std::vector<std::string> right_keys);
ValueId EmitSort(IrFunction& fn, ValueId input, std::vector<SortKey> keys);
ValueId EmitLimit(IrFunction& fn, ValueId input, int64_t n);
ValueId EmitUnion(IrFunction& fn, ValueId a, ValueId b);

ValueId EmitMatmul(IrFunction& fn, ValueId a, ValueId b);
ValueId EmitAdd(IrFunction& fn, ValueId a, ValueId b);
ValueId EmitSub(IrFunction& fn, ValueId a, ValueId b);
ValueId EmitMul(IrFunction& fn, ValueId a, ValueId b);
ValueId EmitScale(IrFunction& fn, ValueId a, double factor);
ValueId EmitRelu(IrFunction& fn, ValueId a);
ValueId EmitSigmoid(IrFunction& fn, ValueId a);
ValueId EmitTranspose(IrFunction& fn, ValueId a);
ValueId EmitReduceMean(IrFunction& fn, ValueId a);
ValueId EmitAddRow(IrFunction& fn, ValueId a, ValueId row);

// OpClass of an opcode, for the cost model. Unknown opcodes are kGeneric.
OpClass OpClassOf(const std::string& opcode);

// True for pure elementwise tensor ops (fusable into one pass over data).
bool IsElementwiseTensorOp(const std::string& opcode);

}  // namespace skadi

#endif  // SRC_IR_DIALECTS_H_
