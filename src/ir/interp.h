// IR interpreter: executes a verified IrFunction against runtime values
// using the format/* kernels. This is the "lowered" execution path shared by
// every backend — device placement changes the cost model charge, not the
// kernel (see DESIGN.md substitution table).
#ifndef SRC_IR_INTERP_H_
#define SRC_IR_INTERP_H_

#include <variant>

#include "src/format/compute.h"
#include "src/format/record_batch.h"
#include "src/format/tensor.h"
#include "src/ir/ir.h"

namespace skadi {

using IrRuntimeValue = std::variant<RecordBatch, Tensor, double>;

struct IrExecStats {
  int64_t ops_executed = 0;
  // Bytes of intermediate + output values materialized. Fusion reduces this:
  // a fused chain materializes once.
  int64_t bytes_materialized = 0;
};

// Approximate size of a runtime value (for stats and cost charging).
int64_t IrValueBytes(const IrRuntimeValue& value);

// Execution knobs threaded from the task layer into the relational kernels.
struct IrEvalOptions {
  ComputeOptions compute;
};

// Runs the function with `args` bound to its parameters (positional).
Result<std::vector<IrRuntimeValue>> EvalIrFunction(const IrFunction& fn,
                                                   std::vector<IrRuntimeValue> args,
                                                   IrExecStats* stats = nullptr,
                                                   const IrEvalOptions& options = {});

}  // namespace skadi

#endif  // SRC_IR_INTERP_H_
