#include "src/ir/interp.h"

#include <unordered_map>

#include "src/ir/dialects.h"

namespace skadi {

int64_t IrValueBytes(const IrRuntimeValue& value) {
  if (const RecordBatch* batch = std::get_if<RecordBatch>(&value)) {
    return static_cast<int64_t>(batch->ByteSize());
  }
  if (const Tensor* tensor = std::get_if<Tensor>(&value)) {
    return static_cast<int64_t>(tensor->ByteSize());
  }
  return static_cast<int64_t>(sizeof(double));
}

namespace {

Result<RecordBatch> AsBatch(const IrRuntimeValue& v, const std::string& opcode) {
  const RecordBatch* batch = std::get_if<RecordBatch>(&v);
  if (batch == nullptr) {
    return Status::InvalidArgument("op '" + opcode + "' expects a table operand");
  }
  return *batch;
}

Result<Tensor> AsTensor(const IrRuntimeValue& v, const std::string& opcode) {
  const Tensor* tensor = std::get_if<Tensor>(&v);
  if (tensor == nullptr) {
    return Status::InvalidArgument("op '" + opcode + "' expects a tensor operand");
  }
  return *tensor;
}

// Applies one unary elementwise step of a fused chain, described as
// "tensor.relu" / "tensor.sigmoid" / "tensor.scale:<factor>".
Result<Tensor> ApplyFusedStep(Tensor input, const std::string& step) {
  if (step == kOpTensorRelu) {
    return Relu(input);
  }
  if (step == kOpTensorSigmoid) {
    return Sigmoid(input);
  }
  const std::string scale_prefix = std::string(kOpTensorScale) + ":";
  if (step.rfind(scale_prefix, 0) == 0) {
    return Scale(input, std::stod(step.substr(scale_prefix.size())));
  }
  return Status::InvalidArgument("unknown fused elementwise step '" + step + "'");
}

}  // namespace

Result<std::vector<IrRuntimeValue>> EvalIrFunction(const IrFunction& fn,
                                                   std::vector<IrRuntimeValue> args,
                                                   IrExecStats* stats,
                                                   const IrEvalOptions& options) {
  const ComputeOptions& copts = options.compute;
  SKADI_RETURN_IF_ERROR(fn.Verify());
  if (args.size() != fn.params().size()) {
    return Status::InvalidArgument("function '" + fn.name() + "' takes " +
                                   std::to_string(fn.params().size()) + " args, got " +
                                   std::to_string(args.size()));
  }
  std::unordered_map<ValueId, IrRuntimeValue> env;
  for (size_t i = 0; i < args.size(); ++i) {
    env.emplace(fn.params()[i], std::move(args[i]));
  }

  for (const IrOp& op : fn.ops()) {
    std::vector<const IrRuntimeValue*> in;
    in.reserve(op.operands.size());
    for (ValueId operand : op.operands) {
      in.push_back(&env.at(operand));
    }

    IrRuntimeValue result;
    const std::string& opcode = op.opcode;

    if (opcode == kOpRelFilter) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(ExprPtr pred, op.GetAttr<ExprPtr>("pred"));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, FilterBatch(batch, *pred, copts));
      result = std::move(out);
    } else if (opcode == kOpRelProject) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(auto projections,
                             op.GetAttr<std::vector<ProjectionSpec>>("projections"));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, ProjectBatch(batch, projections, copts));
      result = std::move(out);
    } else if (opcode == kOpFusedFilterProject) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(ExprPtr pred, op.GetAttr<ExprPtr>("pred"));
      SKADI_ASSIGN_OR_RETURN(auto projections,
                             op.GetAttr<std::vector<ProjectionSpec>>("projections"));
      SKADI_ASSIGN_OR_RETURN(RecordBatch filtered, FilterBatch(batch, *pred, copts));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, ProjectBatch(filtered, projections, copts));
      result = std::move(out);
    } else if (opcode == kOpRelAggregate) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(auto group_by, op.GetAttr<std::vector<std::string>>("group_by"));
      SKADI_ASSIGN_OR_RETURN(auto aggs, op.GetAttr<std::vector<AggregateSpec>>("aggs"));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, GroupAggregateBatch(batch, group_by, aggs, copts));
      result = std::move(out);
    } else if (opcode == kOpRelJoin) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch left, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(RecordBatch right, AsBatch(*in[1], opcode));
      SKADI_ASSIGN_OR_RETURN(auto lk, op.GetAttr<std::vector<std::string>>("left_keys"));
      SKADI_ASSIGN_OR_RETURN(auto rk, op.GetAttr<std::vector<std::string>>("right_keys"));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, HashJoinBatch(left, right, lk, rk, copts));
      result = std::move(out);
    } else if (opcode == kOpRelSort) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(auto keys, op.GetAttr<std::vector<SortKey>>("keys"));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, SortBatch(batch, keys));
      result = std::move(out);
    } else if (opcode == kOpRelLimit) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(int64_t n, op.GetAttr<int64_t>("n"));
      result = LimitBatch(batch, n);
    } else if (opcode == kOpRelUnion) {
      SKADI_ASSIGN_OR_RETURN(RecordBatch a, AsBatch(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(RecordBatch b, AsBatch(*in[1], opcode));
      SKADI_ASSIGN_OR_RETURN(RecordBatch out, ConcatBatches({a, b}));
      result = std::move(out);
    } else if (opcode == kOpTensorMatmul) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(Tensor b, AsTensor(*in[1], opcode));
      SKADI_ASSIGN_OR_RETURN(Tensor out, MatMul(a, b));
      result = std::move(out);
    } else if (opcode == kOpTensorAdd || opcode == kOpTensorSub || opcode == kOpTensorMul) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(Tensor b, AsTensor(*in[1], opcode));
      Result<Tensor> out = opcode == kOpTensorAdd ? Add(a, b)
                           : opcode == kOpTensorSub ? Sub(a, b)
                                                    : Mul(a, b);
      if (!out.ok()) {
        return out.status();
      }
      result = std::move(out).value();
    } else if (opcode == kOpTensorScale) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(double factor, op.GetAttr<double>("factor"));
      result = Scale(a, factor);
    } else if (opcode == kOpTensorRelu) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      result = Relu(a);
    } else if (opcode == kOpTensorSigmoid) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      result = Sigmoid(a);
    } else if (opcode == kOpTensorTranspose) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      result = Transpose(a);
    } else if (opcode == kOpTensorAddRow) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(Tensor row, AsTensor(*in[1], opcode));
      SKADI_ASSIGN_OR_RETURN(Tensor out, AddRowVector(a, row));
      result = std::move(out);
    } else if (opcode == kOpTensorReduceMean) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      result = ReduceMean(a);
    } else if (opcode == kOpFusedElementwise) {
      SKADI_ASSIGN_OR_RETURN(Tensor a, AsTensor(*in[0], opcode));
      SKADI_ASSIGN_OR_RETURN(auto steps, op.GetAttr<std::vector<std::string>>("sub_ops"));
      Tensor current = std::move(a);
      for (const std::string& step : steps) {
        SKADI_ASSIGN_OR_RETURN(current, ApplyFusedStep(std::move(current), step));
      }
      result = std::move(current);
    } else {
      return Status::Unimplemented("interpreter does not handle opcode '" + opcode + "'");
    }

    if (stats != nullptr) {
      stats->ops_executed += 1;
      stats->bytes_materialized += IrValueBytes(result);
    }
    env.emplace(op.results[0], std::move(result));
  }

  std::vector<IrRuntimeValue> outputs;
  outputs.reserve(fn.returns().size());
  for (ValueId ret : fn.returns()) {
    outputs.push_back(env.at(ret));
  }
  return outputs;
}

}  // namespace skadi
