// A compact multi-level IR in the spirit of MLIR (§2.2): SSA values, ops
// with string opcodes + typed attributes, dialect namespaces ("rel.*",
// "tensor.*"), a verifier, and a pass manager. Vertices of the logical
// FlowGraph carry IrFunctions as their hardware-agnostic computation; a
// backend-selection pass annotates ops with a device kind, and the
// interpreter (ir/interp.h) executes them with format/* kernels.
#ifndef SRC_IR_IR_H_
#define SRC_IR_IR_H_

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/id.h"
#include "src/common/status.h"
#include "src/format/compute.h"
#include "src/hw/device.h"

namespace skadi {

enum class IrTypeKind {
  kTable,   // RecordBatch
  kTensor,  // dense double tensor
  kScalar,  // double scalar
};

std::string_view IrTypeKindName(IrTypeKind kind);

struct IrType {
  IrTypeKind kind = IrTypeKind::kTable;

  static IrType Table() { return {IrTypeKind::kTable}; }
  static IrType Tensor() { return {IrTypeKind::kTensor}; }
  static IrType Scalar() { return {IrTypeKind::kScalar}; }

  bool operator==(const IrType& o) const { return kind == o.kind; }
};

// Attribute values ops can carry. ExprPtr covers predicates/projections;
// the spec vectors cover relational op configuration.
using IrAttr = std::variant<int64_t, double, bool, std::string, ExprPtr,
                            std::vector<std::string>, std::vector<ProjectionSpec>,
                            std::vector<AggregateSpec>, std::vector<SortKey>>;

struct IrValue {
  ValueId id;
  IrType type;
};

struct IrOp {
  std::string opcode;
  std::vector<ValueId> operands;
  std::vector<ValueId> results;
  std::map<std::string, IrAttr> attrs;
  // Filled by the backend-selection pass; nullopt = unassigned.
  std::optional<DeviceKind> backend;

  bool HasAttr(const std::string& key) const { return attrs.count(key) > 0; }

  template <typename T>
  Result<T> GetAttr(const std::string& key) const {
    auto it = attrs.find(key);
    if (it == attrs.end()) {
      return Status::NotFound("op '" + opcode + "' has no attribute '" + key + "'");
    }
    const T* v = std::get_if<T>(&it->second);
    if (v == nullptr) {
      return Status::InvalidArgument("attribute '" + key + "' of '" + opcode +
                                     "' has unexpected type");
    }
    return *v;
  }
};

// A function in SSA form: parameters, a topologically-ordered op list, and
// returned values. Built through the emit helpers; Verify() checks SSA
// invariants.
class IrFunction {
 public:
  explicit IrFunction(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ValueId AddParam(IrType type);

  // Emits an op producing one result of `result_type`; returns the value id.
  ValueId Emit(std::string opcode, std::vector<ValueId> operands, IrType result_type,
               std::map<std::string, IrAttr> attrs = {});

  void SetReturns(std::vector<ValueId> returns) { returns_ = std::move(returns); }

  const std::vector<ValueId>& params() const { return params_; }
  const std::vector<IrOp>& ops() const { return ops_; }
  std::vector<IrOp>& mutable_ops() { return ops_; }
  const std::vector<ValueId>& returns() const { return returns_; }

  Result<IrType> TypeOf(ValueId value) const;
  bool IsParam(ValueId value) const;

  // SSA invariants: every operand is defined (param or earlier result),
  // every value defined once, all returns defined.
  Status Verify() const;

  // Number of ops (fused ops count once).
  size_t num_ops() const { return ops_.size(); }

  std::string ToString() const;

  // Inlines `producer` into `consumer`: consumer's parameter at
  // `consumer_param_index` is replaced by producer's (single) return value.
  // Value ids are globally unique, so ops transfer verbatim. The composed
  // function's parameters are producer's params followed by consumer's
  // remaining params.
  static Result<IrFunction> Compose(const IrFunction& producer, const IrFunction& consumer,
                                    size_t consumer_param_index);

 private:
  friend class PassManager;

  std::string name_;
  std::vector<ValueId> params_;
  std::vector<IrOp> ops_;
  std::vector<ValueId> returns_;
  std::map<ValueId, IrType> types_;
};

}  // namespace skadi

#endif  // SRC_IR_IR_H_
