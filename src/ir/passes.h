// Graph-level optimization passes over IrFunctions (§2.2: "a common IR
// enables graph-level optimizations such as op-fusing across application
// domains").
//
//   DCE            — drop ops whose results are never used (all ops are pure)
//   CSE            — deduplicate identical (opcode, operands, attrs) ops
//   MergeFilters   — filter(filter(x, p1), p2) => filter(x, p1 AND p2)
//   FuseElementwise— chains of unary elementwise tensor ops => one fused op
//   FuseFilterProject — project(filter(x)) => fused.filter_project
//   SelectBackends — annotate each op with the cheapest device kind
#ifndef SRC_IR_PASSES_H_
#define SRC_IR_PASSES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace skadi {

struct PassStats {
  int64_t ops_removed = 0;
  int64_t ops_fused = 0;
};

Status RunDce(IrFunction& fn, PassStats* stats = nullptr);
Status RunCse(IrFunction& fn, PassStats* stats = nullptr);
Status RunMergeFilters(IrFunction& fn, PassStats* stats = nullptr);
Status RunFuseElementwise(IrFunction& fn, PassStats* stats = nullptr);
Status RunFuseFilterProject(IrFunction& fn, PassStats* stats = nullptr);

// Annotates op.backend with the cheapest available device kind for the op's
// class, assuming `assumed_bytes` of input per op.
Status RunSelectBackends(IrFunction& fn, const std::vector<DeviceKind>& available,
                         int64_t assumed_bytes = 1 << 20);

// Ordered pipeline of passes by name. Unknown names fail.
class PassManager {
 public:
  PassManager& Add(const std::string& pass_name);

  // The standard optimization pipeline: cse, merge-filters,
  // fuse-filter-project, fuse-elementwise, dce.
  static PassManager StandardPipeline();

  Status Run(IrFunction& fn, PassStats* stats = nullptr) const;

  const std::vector<std::string>& passes() const { return passes_; }

 private:
  std::vector<std::string> passes_;
};

}  // namespace skadi

#endif  // SRC_IR_PASSES_H_
