#include "src/common/queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(BlockingQueueTest, PushPopFifo) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(BlockingQueueTest, TryPopOnEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, PopWithTimeoutExpires) {
  BlockingQueue<int> q;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWithTimeout(std::chrono::milliseconds(20)).has_value());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(BlockingQueueTest, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::thread popper([&q] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  popper.join();
}

TEST(BlockingQueueTest, PushAfterCloseFails) {
  BlockingQueue<int> q;
  q.Close();
  EXPECT_FALSE(q.Push(1));
}

TEST(BlockingQueueTest, DrainsPendingItemsAfterClose) {
  BlockingQueue<int> q;
  q.Push(10);
  q.Push(20);
  q.Close();
  EXPECT_EQ(q.Pop(), 10);
  EXPECT_EQ(q.Pop(), 20);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, ManyProducersManyConsumersLoseNothing) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v.has_value()) {
          return;
        }
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  q.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }

  constexpr int64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace skadi
