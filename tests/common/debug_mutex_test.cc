// Tests of the DebugMutex lock-order (deadlock-potential) checker.
//
// These tests drive DebugMutex directly, so they work in every build mode —
// the SKADI_DEBUG_LOCKS option only controls whether skadi::Mutex aliases it.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mutex.h"

namespace skadi {
namespace {

// Captures cycle reports instead of aborting; restores the default on exit.
class CycleCapture {
 public:
  CycleCapture() {
    LockOrderRegistry::Instance().Clear();
    LockOrderRegistry::Instance().SetCycleHandler(
        [this](const std::string& report) { reports_.push_back(report); });
  }
  ~CycleCapture() {
    LockOrderRegistry::Instance().SetCycleHandler(nullptr);
    LockOrderRegistry::Instance().Clear();
  }

  const std::vector<std::string>& reports() const { return reports_; }

 private:
  std::vector<std::string> reports_;
};

TEST(DebugMutexTest, ConsistentOrderIsClean) {
  CycleCapture capture;
  DebugMutex a("a"), b("b");
  for (int i = 0; i < 3; ++i) {
    a.Lock();
    b.Lock();
    b.Unlock();
    a.Unlock();
  }
  EXPECT_TRUE(capture.reports().empty());
}

TEST(DebugMutexTest, ReversedOrderReportsCycle) {
  CycleCapture capture;
  DebugMutex a("first"), b("second");
  // Establish a -> b ...
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  // ... then acquire in the opposite order: deadlock potential, even though
  // no deadlock happens in this single-threaded run.
  b.Lock();
  a.Lock();
  a.Unlock();
  b.Unlock();
  ASSERT_EQ(capture.reports().size(), 1u);
  EXPECT_NE(capture.reports()[0].find("first"), std::string::npos);
  EXPECT_NE(capture.reports()[0].find("second"), std::string::npos);
}

TEST(DebugMutexTest, TransitiveCycleIsDetected) {
  CycleCapture capture;
  DebugMutex a("a"), b("b"), c("c");
  // a -> b, b -> c, then c -> a closes the loop.
  a.Lock(); b.Lock(); b.Unlock(); a.Unlock();
  b.Lock(); c.Lock(); c.Unlock(); b.Unlock();
  c.Lock(); a.Lock(); a.Unlock(); c.Unlock();
  ASSERT_EQ(capture.reports().size(), 1u);
}

TEST(DebugMutexTest, RecursiveAcquisitionIsReported) {
  CycleCapture capture;
  DebugMutex a("rec");
  a.Lock();
  EXPECT_FALSE(a.TryLock());  // non-recursive: TryLock on a held lock fails
  a.Unlock();
  EXPECT_TRUE(capture.reports().empty());
}

TEST(DebugMutexTest, EdgesFromManyThreadsAreMerged) {
  CycleCapture capture;
  DebugMutex a("ta"), b("tb");
  // Thread 1 repeatedly takes a -> b; thread 2 does the same (no conflict).
  auto body = [&] {
    for (int i = 0; i < 50; ++i) {
      a.Lock();
      b.Lock();
      b.Unlock();
      a.Unlock();
    }
  };
  std::thread t1(body), t2(body);
  t1.join();
  t2.join();
  EXPECT_TRUE(capture.reports().empty());
  // Now one reversed acquisition flags the cycle against the merged graph.
  b.Lock();
  a.Lock();
  a.Unlock();
  b.Unlock();
  EXPECT_EQ(capture.reports().size(), 1u);
}

TEST(DebugMutexTest, DestroyedMutexLeavesGraph) {
  CycleCapture capture;
  DebugMutex a("outer");
  {
    DebugMutex tmp("inner");
    a.Lock();
    tmp.Lock();
    tmp.Unlock();
    a.Unlock();
  }  // tmp destroyed: its edges must be purged
  // A fresh mutex may reuse tmp's address; a stale edge would produce a
  // phantom cycle here.
  DebugMutex c("fresh");
  c.Lock();
  a.Lock();
  a.Unlock();
  c.Unlock();
  EXPECT_TRUE(capture.reports().empty());
}

TEST(DebugMutexTest, MutexLockScopesWithDebugMutex) {
#ifdef SKADI_DEBUG_LOCKS
  // Mutex == DebugMutex in this build: exercise the scoped wrapper path.
  CycleCapture capture;
  Mutex a("scoped-a"), b("scoped-b");
  {
    MutexLock la(a);
    // analyze:allow lock-order-cycle (deliberate inversion; EXPECT below asserts the runtime detector fired)
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(capture.reports().size(), 1u);
#else
  GTEST_SKIP() << "Mutex is the plain wrapper in this build";
#endif
}

// Out-of-line so ASSERT_DEATH's statement has no macro-hostile commas.
void DieByLockCycle() {
  LockOrderRegistry::Instance().Clear();
  DebugMutex a("da");
  DebugMutex b("db");
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  b.Lock();
  a.Lock();  // cycle with no handler installed: abort()
}

TEST(DebugMutexDeathTest, DefaultHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(DieByLockCycle(), "lock-order cycle");
}

}  // namespace
}  // namespace skadi
