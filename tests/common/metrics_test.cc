#include "src/common/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(9);
  EXPECT_EQ(c.value(), 10);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), 80000);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum_nanos(), 600);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 200.0);
}

TEST(HistogramTest, QuantileIsMonotonicAndBounding) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i * 1000);  // 1us .. 1ms
  }
  int64_t p50 = h.QuantileNanos(0.5);
  int64_t p99 = h.QuantileNanos(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p50, 100 * 1000);        // > 100us
  EXPECT_LE(p99, 4 * 1000 * 1000);   // bucketed upper bound, within 4x
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.QuantileNanos(0.99), 0);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 0.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum_nanos(), 0);
}

TEST(MetricsRegistryTest, SameNameSameCounter) {
  MetricsRegistry registry;
  registry.GetCounter("a").Add(5);
  registry.GetCounter("a").Add(5);
  EXPECT_EQ(registry.GetCounter("a").value(), 10);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz").Add(1);
  registry.GetCounter("aa").Add(2);
  auto snapshot = registry.SnapshotCounters();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "aa");
  EXPECT_EQ(snapshot[1].first, "zz");
}

TEST(MetricsRegistryTest, ResetAllClearsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(3);
  registry.GetHistogram("h").Record(42);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c").value(), 0);
  EXPECT_EQ(registry.GetHistogram("h").count(), 0);
}

TEST(MetricsRegistryTest, ReferencesStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler" + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.GetCounter("stable"));
}

// Regression (ISSUE 8 satellite): q = 1.0 makes target == count, which the
// `seen > target` scan could never satisfy, so the loop fell through to the
// 1 << 62 sentinel instead of the max bucket.
TEST(HistogramTest, QuantileAtOneReturnsMaxBucketNotSentinel) {
  Histogram h;
  h.Record(1000);  // bucket 9 ([512, 1024)) -> upper bound 1024
  EXPECT_EQ(h.QuantileNanos(1.0), 1024);
  for (int i = 0; i < 100; ++i) {
    h.Record(1000);
  }
  EXPECT_EQ(h.QuantileNanos(1.0), 1024);
  EXPECT_LT(h.QuantileNanos(1.0), int64_t{1} << 62);
}

// Bucket edges: bucket i holds [2^i, 2^(i+1)), and QuantileNanos reports the
// bucket's upper bound.
TEST(HistogramTest, BucketBoundaries) {
  {
    Histogram h;
    h.Record(0);  // bucket 0 -> upper bound 2
    EXPECT_EQ(h.QuantileNanos(0.5), 2);
  }
  {
    Histogram h;
    h.Record(1);  // still bucket 0
    EXPECT_EQ(h.QuantileNanos(0.5), 2);
  }
  for (int i = 1; i <= 40; ++i) {
    Histogram h;
    h.Record(int64_t{1} << i);  // exactly on the edge: bucket i
    EXPECT_EQ(h.QuantileNanos(0.5), int64_t{1} << (i + 1)) << "edge 2^" << i;
    Histogram below;
    below.Record((int64_t{1} << i) - 1);  // one below the edge: bucket i-1
    EXPECT_EQ(below.QuantileNanos(0.5), int64_t{1} << i) << "below 2^" << i;
  }
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(3);
  g.Add(-9);
  EXPECT_EQ(g.value(), 1);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistryTest, GaugesSnapshotAndReset) {
  MetricsRegistry registry;
  registry.GetGauge("depth").Set(4);
  auto snapshot = registry.SnapshotGauges();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "depth");
  EXPECT_EQ(snapshot[0].second, 4);
  registry.ResetAll();
  EXPECT_EQ(registry.GetGauge("depth").value(), 0);
}

TEST(MetricsRegistryTest, JsonDumpContainsAllThreeSurfaces) {
  MetricsRegistry registry;
  registry.GetCounter("c.hits").Add(2);
  registry.GetGauge("g.depth").Set(-3);
  registry.GetHistogram("h.lat").Record(1000);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.hits\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g.depth\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// Registry lookups race with updates from other threads (the scheduler and
// raylet paths do exactly this); run under the TSan matrix.
TEST(MetricsRegistryTest, ConcurrentMixedLookupsAndUpdates) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("shared.counter").Increment();
        registry.GetGauge("shared.gauge").Add(i % 2 == 0 ? 1 : -1);
        registry.GetHistogram("shared.hist").Record(i);
        registry.GetCounter("private.counter." + std::to_string(t)).Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.GetCounter("shared.counter").value(), 16000);
  EXPECT_EQ(registry.GetGauge("shared.gauge").value(), 0);
  EXPECT_EQ(registry.GetHistogram("shared.hist").count(), 16000);
  EXPECT_FALSE(registry.ToJson().empty());
}

}  // namespace
}  // namespace skadi
