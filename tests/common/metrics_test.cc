#include "src/common/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(9);
  EXPECT_EQ(c.value(), 10);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), 80000);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum_nanos(), 600);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 200.0);
}

TEST(HistogramTest, QuantileIsMonotonicAndBounding) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i * 1000);  // 1us .. 1ms
  }
  int64_t p50 = h.QuantileNanos(0.5);
  int64_t p99 = h.QuantileNanos(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p50, 100 * 1000);        // > 100us
  EXPECT_LE(p99, 4 * 1000 * 1000);   // bucketed upper bound, within 4x
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.QuantileNanos(0.99), 0);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 0.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum_nanos(), 0);
}

TEST(MetricsRegistryTest, SameNameSameCounter) {
  MetricsRegistry registry;
  registry.GetCounter("a").Add(5);
  registry.GetCounter("a").Add(5);
  EXPECT_EQ(registry.GetCounter("a").value(), 10);
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz").Add(1);
  registry.GetCounter("aa").Add(2);
  auto snapshot = registry.SnapshotCounters();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "aa");
  EXPECT_EQ(snapshot[1].first, "zz");
}

TEST(MetricsRegistryTest, ResetAllClearsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(3);
  registry.GetHistogram("h").Record(42);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c").value(), 0);
  EXPECT_EQ(registry.GetHistogram("h").count(), 0);
}

TEST(MetricsRegistryTest, ReferencesStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler" + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.GetCounter("stable"));
}

}  // namespace
}  // namespace skadi
