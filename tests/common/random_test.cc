#include "src/common/random.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextI64InRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[rng.NextZipf(10, 0.0)]++;
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[rng.NextZipf(100, 0.99)]++;
  }
  // Rank 0 should dominate rank 50 by a wide margin under theta=0.99.
  EXPECT_GT(counts[0], 10 * (counts.count(50) ? counts[50] : 1));
}

TEST(RngTest, StringHasRequestedLengthAndAlphabet) {
  Rng rng(3);
  std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace skadi
