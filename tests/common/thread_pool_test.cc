#include "src/common/thread_pool.h"

#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, GrowAddsThreads) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  pool.Grow(3);
  EXPECT_EQ(pool.num_threads(), 4u);
  pool.Shutdown();
}

TEST(ThreadPoolTest, ShrinkReducesLogicalSizeAndKeepsWorking) {
  ThreadPool pool(4);
  pool.Shrink(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ShrinkNeverDropsBelowOneWorker) {
  ThreadPool pool(2);
  pool.Shrink(10);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.Submit([&ran] { ran = true; }));
  pool.Shutdown();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelismActuallyOverlaps) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int old_peak = peak.load();
      while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    }));
  }
  pool.Shutdown();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace skadi
