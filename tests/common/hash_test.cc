#include "src/common/hash.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashString("skadi"), HashString("skadi"));
  EXPECT_EQ(HashI64(42), HashI64(42));
}

TEST(HashTest, DistinctInputsRarelyCollide) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(HashI64(i));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(HashTest, SeedChangesResult) {
  EXPECT_NE(HashString("x", 1), HashString("x", 2));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(PartitionTest, InRange) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(PartitionOf(HashI64(i), 7), 7u);
  }
}

// Property: hash partitioning spreads keys roughly evenly. With 100k keys
// over 16 partitions the expected count is 6250; a 20% band is generous for
// a decent hash but catches gross bucketing bugs.
TEST(PartitionTest, RoughlyUniform) {
  constexpr uint32_t kParts = 16;
  constexpr int kKeys = 100000;
  std::vector<int> counts(kParts, 0);
  for (int i = 0; i < kKeys; ++i) {
    counts[PartitionOf(HashI64(i), kParts)]++;
  }
  const double expected = static_cast<double>(kKeys) / kParts;
  for (uint32_t p = 0; p < kParts; ++p) {
    EXPECT_GT(counts[p], expected * 0.8) << "partition " << p;
    EXPECT_LT(counts[p], expected * 1.2) << "partition " << p;
  }
}

// Property: partition assignment is stable — repartitioning with the same n
// gives identical placement (shuffle consumers rely on this).
TEST(PartitionTest, StableAcrossCalls) {
  for (int i = 0; i < 1000; ++i) {
    uint64_t h = HashString("key" + std::to_string(i));
    EXPECT_EQ(PartitionOf(h, 9), PartitionOf(h, 9));
  }
}

}  // namespace
}  // namespace skadi
