#include "src/common/morsel_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace skadi {
namespace {

// Every morsel of [0, total) is visited exactly once, and the countdown
// continuation (RunRegion's Event) releases the caller only after every
// helper finished — missed updates here would show as holes in `hits`.
TEST(MorselPoolTest, ParallelForCoversEveryRowExactlyOnce) {
  MorselPool pool(4);
  constexpr int64_t kTotal = 100'000;
  std::vector<std::atomic<int>> hits(kTotal);
  pool.ParallelFor(kTotal, 1024, 8, [&hits](int64_t, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "row " << i;
  }
}

TEST(MorselPoolTest, ParallelChunksPartitionExactly) {
  MorselPool pool(4);
  constexpr int64_t kTotal = 9'999;
  std::atomic<int64_t> covered{0};
  std::atomic<int> calls{0};
  pool.ParallelChunks(kTotal, 4, [&](int chunk, int64_t begin, int64_t end) {
    EXPECT_GE(chunk, 0);
    EXPECT_LT(begin, end);
    covered.fetch_add(end - begin);
    calls.fetch_add(1);
  });
  EXPECT_EQ(covered.load(), kTotal);
  EXPECT_LE(calls.load(), 4);
}

// Repeated small regions through the shared pool: the countdown must reach
// zero every time (a lost decrement would hang the BlockingWait, surfacing
// as a test timeout rather than a wrong value).
TEST(MorselPoolTest, RepeatedRegionsAllComplete) {
  MorselPool& pool = MorselPool::Global();
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(1'000, 64, 8, [&sum](int64_t, int64_t begin, int64_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 1'000);
  }
}

}  // namespace
}  // namespace skadi
