#include "src/common/status.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing object");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing object");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing object");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfMemory("store full"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  SKADI_ASSIGN_OR_RETURN(int h, Half(x));
  SKADI_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::Ok();
}

Status CheckBoth(int a, int b) {
  SKADI_RETURN_IF_ERROR(FailIfNegative(a));
  SKADI_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorShortCircuits) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

}  // namespace
}  // namespace skadi
