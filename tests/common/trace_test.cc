#include "src/common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/event.h"
#include "src/net/reactor.h"

namespace skadi {
namespace {

constexpr int64_t kMs = 1'000'000;

// Global tracer state: every test starts from a clean, enabled,
// sample-everything tracer and leaves it disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Reset();
    trace::SetSampleEvery(1);
    trace::SetEnabled(true);
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::SetSampleEvery(1);
    trace::Reset();
  }
};

std::vector<trace::TraceEvent> EventsNamed(const std::vector<trace::TraceEvent>& all,
                                           const char* name) {
  std::vector<trace::TraceEvent> out;
  for (const trace::TraceEvent& e : all) {
    if (e.name != nullptr && std::strcmp(e.name, name) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  trace::SetEnabled(false);
  { trace::TraceSpan span("test.disabled"); }
  trace::Instant("test.disabled.instant");
  EXPECT_TRUE(trace::Snapshot().empty());
  EXPECT_FALSE(trace::CurrentContext().valid());
}

TEST_F(TraceTest, NestedSpansShareTraceAndParentCorrectly) {
  {
    trace::TraceSpan outer("test.outer");
    trace::TraceSpan inner("test.inner");
    EXPECT_TRUE(trace::CurrentContext().valid());
  }
  auto all = trace::Snapshot();
  auto outer = EventsNamed(all, "test.outer");
  auto inner = EventsNamed(all, "test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0].trace_id, outer[0].trace_id);
  EXPECT_EQ(inner[0].parent_id, outer[0].span_id);
  EXPECT_EQ(outer[0].parent_id, 0u);  // root
  EXPECT_FALSE(trace::CurrentContext().valid());  // restored on scope exit
}

TEST_F(TraceTest, InstantRecordsOnlyInsideSampledTrace) {
  trace::Instant("test.orphan");  // no current context: dropped
  {
    trace::TraceSpan root("test.root");
    trace::Instant("test.marker", 42, "n");
  }
  auto all = trace::Snapshot();
  EXPECT_TRUE(EventsNamed(all, "test.orphan").empty());
  auto marker = EventsNamed(all, "test.marker");
  auto root = EventsNamed(all, "test.root");
  ASSERT_EQ(marker.size(), 1u);
  ASSERT_EQ(root.size(), 1u);
  EXPECT_EQ(marker[0].phase, 1);
  EXPECT_EQ(marker[0].parent_id, root[0].span_id);
  EXPECT_EQ(marker[0].arg, 42);
}

// The hop every continuation chain depends on: Post captures the poster's
// context, the dispatcher re-installs it, so a span opened inside the posted
// continuation parents under the posting span — across threads.
TEST_F(TraceTest, ContextPropagatesAcrossReactorPost) {
  Reactor reactor("trace-test");
  reactor.Start(1);
  Event done;
  {
    trace::TraceSpan root("test.post.root");
    reactor.Post([&done] {
      trace::TraceSpan hopped("test.post.hopped");
      done.Set();
    });
    done.BlockingWait();
  }
  reactor.Shutdown();
  auto all = trace::Snapshot();
  auto root = EventsNamed(all, "test.post.root");
  auto hopped = EventsNamed(all, "test.post.hopped");
  ASSERT_EQ(root.size(), 1u);
  ASSERT_EQ(hopped.size(), 1u);
  EXPECT_EQ(hopped[0].trace_id, root[0].trace_id);
  EXPECT_EQ(hopped[0].parent_id, root[0].span_id);
  EXPECT_NE(hopped[0].tid, root[0].tid);  // really crossed a thread
}

TEST_F(TraceTest, ContextPropagatesAcrossScheduleAfter) {
  Reactor reactor("trace-timer-test");
  std::atomic<bool> fired{false};
  {
    trace::TraceSpan root("test.timer.root");
    reactor.ScheduleAfter(1 * kMs, [&fired] {
      trace::TraceSpan hopped("test.timer.hopped");
      fired.store(true);
    });
  }
  const int64_t deadline = NowNanos() + 5'000 * kMs;
  while (!fired.load() && NowNanos() < deadline) {
    reactor.PollOnce();
  }
  ASSERT_TRUE(fired.load());
  auto all = trace::Snapshot();
  auto root = EventsNamed(all, "test.timer.root");
  auto hopped = EventsNamed(all, "test.timer.hopped");
  ASSERT_EQ(root.size(), 1u);
  ASSERT_EQ(hopped.size(), 1u);
  EXPECT_EQ(hopped[0].trace_id, root[0].trace_id);
  EXPECT_EQ(hopped[0].parent_id, root[0].span_id);
}

// Async state machines begin a span on one thread and end it on another.
TEST_F(TraceTest, BeginEndSpanAcrossThreads) {
  trace::SpanHandle handle;
  {
    trace::TraceSpan root("test.handle.root");
    handle = trace::BeginSpan("test.handle.op", trace::CurrentContext());
  }
  std::thread finisher([&handle] { trace::EndSpan(handle, 7, "result"); });
  finisher.join();
  auto all = trace::Snapshot();
  auto root = EventsNamed(all, "test.handle.root");
  auto op = EventsNamed(all, "test.handle.op");
  ASSERT_EQ(root.size(), 1u);
  ASSERT_EQ(op.size(), 1u);
  EXPECT_EQ(op[0].trace_id, root[0].trace_id);
  EXPECT_EQ(op[0].parent_id, root[0].span_id);
  EXPECT_EQ(op[0].arg, 7);
}

TEST_F(TraceTest, EndSpanIsIdempotent) {
  trace::SpanHandle handle = trace::BeginSpan("test.idem", trace::Context{});
  trace::EndSpan(handle);
  trace::EndSpan(handle);
  EXPECT_EQ(EventsNamed(trace::Snapshot(), "test.idem").size(), 1u);
}

TEST_F(TraceTest, SamplingSkipsRootsButKeepsSampledFlowsComplete) {
  trace::SetSampleEvery(2);
  for (int i = 0; i < 4; ++i) {
    trace::TraceSpan root("test.sampled.root");
    trace::TraceSpan child("test.sampled.child");
  }
  auto all = trace::Snapshot();
  // Every sampled root brings its child; unsampled roots record neither.
  auto roots = EventsNamed(all, "test.sampled.root");
  auto children = EventsNamed(all, "test.sampled.child");
  EXPECT_EQ(roots.size(), 2u);
  EXPECT_EQ(children.size(), roots.size());
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  {
    trace::TraceSpan root("test.export.root");
    trace::TraceSpan child("test.export.child");
    trace::Instant("test.export.marker");
  }
  std::ostringstream os;
  trace::WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("test.export.child"), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  // Balanced braces/brackets as a cheap structural check (the integration
  // test runs tools/trace.py for real JSON validation).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, ResetDropsRecordedEvents) {
  { trace::TraceSpan span("test.reset"); }
  EXPECT_FALSE(trace::Snapshot().empty());
  trace::Reset();
  EXPECT_TRUE(trace::Snapshot().empty());
}

}  // namespace
}  // namespace skadi
