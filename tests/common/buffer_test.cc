#include "src/common/buffer.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(BufferTest, EmptyByDefault) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(BufferTest, FromString) {
  Buffer b = Buffer::FromString("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.AsStringView(), "hello");
}

TEST(BufferTest, ZerosAllocatesZeroedBytes) {
  Buffer b = Buffer::Zeros(128);
  EXPECT_EQ(b.size(), 128u);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.data()[i], 0);
  }
}

TEST(BufferTest, CopySharesStorage) {
  Buffer a = Buffer::FromString("shared");
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(BufferTest, EqualityComparesContents) {
  EXPECT_EQ(Buffer::FromString("abc"), Buffer::FromString("abc"));
  EXPECT_FALSE(Buffer::FromString("abc") == Buffer::FromString("abd"));
  EXPECT_FALSE(Buffer::FromString("abc") == Buffer::FromString("ab"));
  EXPECT_EQ(Buffer(), Buffer());
}

TEST(BufferBuilderTest, RoundTripsPrimitives) {
  BufferBuilder builder;
  builder.AppendU8(7);
  builder.AppendU32(0xDEADBEEF);
  builder.AppendU64(1ULL << 40);
  builder.AppendI64(-12345);
  builder.AppendF64(3.5);
  builder.AppendLengthPrefixedString("skadi");
  Buffer buffer = builder.Finish();

  BufferReader reader(buffer);
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(reader.ReadU64(), 1ULL << 40);
  EXPECT_EQ(reader.ReadI64(), -12345);
  EXPECT_EQ(reader.ReadF64(), 3.5);
  EXPECT_EQ(reader.ReadLengthPrefixedString(), "skadi");
  EXPECT_TRUE(reader.exhausted());
}

TEST(BufferReaderTest, OutOfBoundsReadFailsGracefully) {
  BufferBuilder builder;
  builder.AppendU32(1);
  BufferReader reader(builder.Finish());
  EXPECT_EQ(reader.ReadU32(), 1u);
  uint64_t sink = 99;
  EXPECT_FALSE(reader.ReadBytes(&sink, sizeof(sink)));
  EXPECT_EQ(sink, 99u);  // untouched
}

TEST(BufferReaderTest, TruncatedStringClamps) {
  BufferBuilder builder;
  builder.AppendU32(100);  // claims 100 bytes
  builder.AppendBytes("xy", 2);
  BufferReader reader(builder.Finish());
  EXPECT_EQ(reader.ReadLengthPrefixedString(), "xy");
  EXPECT_TRUE(reader.exhausted());
}

TEST(BufferBuilderTest, SizeTracksAppends) {
  BufferBuilder builder;
  EXPECT_EQ(builder.size(), 0u);
  builder.AppendU64(1);
  EXPECT_EQ(builder.size(), 8u);
  builder.AppendLengthPrefixedString("abc");
  EXPECT_EQ(builder.size(), 8u + 4u + 3u);
}

}  // namespace
}  // namespace skadi
