#include "src/common/buffer.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(BufferTest, EmptyByDefault) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(BufferTest, FromString) {
  Buffer b = Buffer::FromString("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.AsStringView(), "hello");
}

TEST(BufferTest, ZerosAllocatesZeroedBytes) {
  Buffer b = Buffer::Zeros(128);
  EXPECT_EQ(b.size(), 128u);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.data()[i], 0);
  }
}

TEST(BufferTest, CopySharesStorage) {
  Buffer a = Buffer::FromString("shared");
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(BufferTest, EqualityComparesContents) {
  EXPECT_EQ(Buffer::FromString("abc"), Buffer::FromString("abc"));
  EXPECT_FALSE(Buffer::FromString("abc") == Buffer::FromString("abd"));
  EXPECT_FALSE(Buffer::FromString("abc") == Buffer::FromString("ab"));
  EXPECT_EQ(Buffer(), Buffer());
}

TEST(BufferBuilderTest, RoundTripsPrimitives) {
  BufferBuilder builder;
  builder.AppendU8(7);
  builder.AppendU32(0xDEADBEEF);
  builder.AppendU64(1ULL << 40);
  builder.AppendI64(-12345);
  builder.AppendF64(3.5);
  builder.AppendLengthPrefixedString("skadi");
  Buffer buffer = builder.Finish();

  BufferReader reader(buffer);
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(reader.ReadU64(), 1ULL << 40);
  EXPECT_EQ(reader.ReadI64(), -12345);
  EXPECT_EQ(reader.ReadF64(), 3.5);
  std::string s;
  EXPECT_TRUE(reader.ReadLengthPrefixedString(s));
  EXPECT_EQ(s, "skadi");
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.corrupt());
}

TEST(BufferReaderTest, OutOfBoundsReadFailsGracefully) {
  BufferBuilder builder;
  builder.AppendU32(1);
  BufferReader reader(builder.Finish());
  EXPECT_EQ(reader.ReadU32(), 1u);
  EXPECT_FALSE(reader.corrupt());
  uint64_t sink = 99;
  EXPECT_FALSE(reader.ReadBytes(&sink, sizeof(sink)));
  EXPECT_EQ(sink, 99u);  // untouched
  EXPECT_TRUE(reader.corrupt());  // latched
}

TEST(BufferReaderTest, TruncatedStringIsCorruption) {
  BufferBuilder builder;
  builder.AppendU32(100);  // claims 100 bytes
  builder.AppendBytes("xy", 2);
  BufferReader reader(builder.Finish());
  std::string out = "sentinel";
  // A lying length prefix must not silently clamp to the available bytes.
  EXPECT_FALSE(reader.ReadLengthPrefixedString(out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(reader.corrupt());
  // The partial payload is not consumed: decoding stops here.
  EXPECT_EQ(reader.remaining(), 2u);
}

TEST(BufferReaderTest, CorruptFlagStaysLatched) {
  BufferBuilder builder;
  builder.AppendU32(7);
  BufferReader reader(builder.Finish());
  (void)reader.ReadU64();  // overruns: only 4 bytes present
  EXPECT_TRUE(reader.corrupt());
  BufferReader fresh{Buffer()};
  std::string out;
  EXPECT_FALSE(fresh.ReadLengthPrefixedString(out));
  EXPECT_TRUE(fresh.corrupt());
}

TEST(BufferBuilderTest, SizeTracksAppends) {
  BufferBuilder builder;
  EXPECT_EQ(builder.size(), 0u);
  builder.AppendU64(1);
  EXPECT_EQ(builder.size(), 8u);
  builder.AppendLengthPrefixedString("abc");
  EXPECT_EQ(builder.size(), 8u + 4u + 3u);
}

TEST(BufferBuilderTest, AlignToPadsWithZeros) {
  BufferBuilder builder;
  builder.AppendU8(0xFF);
  builder.AlignTo(64);
  EXPECT_EQ(builder.size(), 64u);
  builder.AlignTo(64);  // already aligned: no-op
  EXPECT_EQ(builder.size(), 64u);
  builder.AppendZeros(3);
  EXPECT_EQ(builder.size(), 67u);
  Buffer b = builder.Finish();
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_EQ(b.data()[i], 0);
  }
}

// --- Aliasing (Slice/Wrap) and lifetime ---

TEST(BufferSliceTest, SliceAliasesWithoutCopying) {
  Buffer whole = Buffer::FromString("0123456789");
  Buffer::ResetCopyStats();
  Buffer mid = whole.Slice(3, 4);
  EXPECT_EQ(mid.AsStringView(), "3456");
  EXPECT_EQ(mid.data(), whole.data() + 3);  // same storage, no copy
  EXPECT_EQ(Buffer::copy_count(), 0u);
}

TEST(BufferSliceTest, SliceClampsToBounds) {
  Buffer whole = Buffer::FromString("abcdef");
  EXPECT_EQ(whole.Slice(4, 100).AsStringView(), "ef");
  EXPECT_EQ(whole.Slice(100, 5).size(), 0u);
  EXPECT_EQ(whole.Slice(0, 100).AsStringView(), "abcdef");
}

TEST(BufferSliceTest, SliceKeepsParentStorageAlive) {
  Buffer slice;
  {
    Buffer whole = Buffer::FromString("the parent dies first");
    slice = whole.Slice(4, 6);
  }  // `whole` destroyed; slice still owns the bytes via the shared owner
  EXPECT_EQ(slice.AsStringView(), "parent");
}

TEST(BufferSliceTest, SliceOfSliceSharesRootOwner) {
  Buffer root = Buffer::FromString("abcdefgh");
  Buffer inner = root.Slice(2, 6).Slice(1, 3);
  EXPECT_EQ(inner.AsStringView(), "def");
  EXPECT_EQ(inner.owner(), root.owner());
}

TEST(BufferWrapTest, WrapAliasesForeignStorage) {
  auto vec = std::make_shared<std::vector<uint8_t>>(std::vector<uint8_t>{1, 2, 3, 4});
  const uint8_t* raw = vec->data();
  Buffer b = Buffer::Wrap(vec, raw, vec->size());
  vec.reset();  // buffer holds the only reference now
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b.data()[2], 3);
}

TEST(BufferCopyStatsTest, CountsOnlyCopyingConstructors) {
  Buffer::ResetCopyStats();
  Buffer a = Buffer::FromString("12345");
  EXPECT_EQ(Buffer::copy_count(), 1u);
  EXPECT_EQ(Buffer::copy_bytes(), 5u);
  Buffer b = Buffer::FromBytes(a.data(), a.size());
  EXPECT_EQ(Buffer::copy_count(), 2u);
  EXPECT_EQ(Buffer::copy_bytes(), 10u);
  // Handle copies, slices, wraps, and builder finishes are all copy-free.
  Buffer c = a;
  Buffer d = a.Slice(1, 2);
  Buffer e = Buffer::Wrap(a.owner(), a.data(), a.size());
  BufferBuilder builder;
  builder.AppendU64(42);
  Buffer f = builder.Finish();
  (void)c;
  (void)d;
  (void)e;
  (void)f;
  EXPECT_EQ(Buffer::copy_count(), 2u);
  Buffer::ResetCopyStats();
  EXPECT_EQ(Buffer::copy_count(), 0u);
  EXPECT_EQ(Buffer::copy_bytes(), 0u);
}

}  // namespace
}  // namespace skadi
