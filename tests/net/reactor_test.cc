#include "src/net/reactor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace skadi {
namespace {

constexpr int64_t kMs = 1'000'000;

// Drives `r` (no driver threads) until `pred` holds or `timeout` passes.
template <typename Pred>
bool DrainUntil(Reactor& r, Pred pred, int64_t timeout_nanos = 5'000 * kMs) {
  const int64_t deadline = NowNanos() + timeout_nanos;
  while (!pred()) {
    if (NowNanos() >= deadline) {
      return false;
    }
    r.PollOnce();
  }
  return true;
}

TEST(EventTest, OnSetAfterSetRunsInline) {
  Event ev;
  ev.Set();
  bool ran = false;
  ev.OnSet([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(EventTest, SetIsIdempotentAndContinuationsRunOnce) {
  Event ev;
  int runs = 0;
  ev.OnSet([&] { ++runs; });
  ev.Set();
  ev.Set();
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(ev.is_set());
}

TEST(EventTest, DestructionWhilePendingDropsContinuations) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  {
    Event ev;
    ev.OnSet([counter] { counter->fetch_add(1); });
    // ev destroyed without Set: the continuation must be dropped, not run.
  }
  EXPECT_EQ(counter->load(), 0);
  // The shared_ptr capture was released with it.
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(EventTest, BlockingWaitCrossThreadWakeup) {
  Event ev;
  std::thread setter([&] { ev.Set(); });
  EXPECT_TRUE(ev.BlockingWait());
  setter.join();
}

TEST(EventTest, BlockingWaitDeadline) {
  Event ev;
  EXPECT_FALSE(ev.BlockingWait(NowNanos() + 20 * kMs));
}

TEST(ReactorTest, PostRunsInFifoOrder) {
  Reactor r("test");
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    r.Post([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(r.ready_count(), 8u);
  EXPECT_EQ(r.PollOnce(), 8u);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ReactorTest, TimersFireInDeadlineOrder) {
  Reactor r("test");
  std::vector<int> order;
  // Schedule out of order; both land within one wheel rotation.
  r.ScheduleAfter(30 * kMs, [&] { order.push_back(3); });
  r.ScheduleAfter(10 * kMs, [&] { order.push_back(1); });
  r.ScheduleAfter(20 * kMs, [&] { order.push_back(2); });
  EXPECT_EQ(r.pending_timers(), 3u);
  ASSERT_TRUE(DrainUntil(r, [&] { return order.size() == 3; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.pending_timers(), 0u);
}

TEST(ReactorTest, FarTimerBeyondOneRotationStillFires) {
  // 4 slots x 1ms tick = 4ms rotation; a 40ms timer wraps ten times.
  Reactor::Options opt;
  opt.slots = 4;
  Reactor r("test", opt);
  std::atomic<bool> fired{false};
  const int64_t start = NowNanos();
  r.ScheduleAfter(40 * kMs, [&] { fired = true; });
  ASSERT_TRUE(DrainUntil(r, [&] { return fired.load(); }));
  EXPECT_GE(NowNanos() - start, 40 * kMs);
}

TEST(ReactorTest, CancelPreventsFiring) {
  Reactor r("test");
  std::atomic<bool> fired{false};
  TimerId id = r.ScheduleAfter(10 * kMs, [&] { fired = true; });
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(r.Cancel(id));
  EXPECT_FALSE(r.Cancel(id));  // second cancel: already gone
  EXPECT_EQ(r.pending_timers(), 0u);
  // Drain well past the deadline; the continuation must never run.
  const int64_t until = NowNanos() + 30 * kMs;
  while (NowNanos() < until) {
    r.PollOnce();
  }
  EXPECT_FALSE(fired.load());
}

TEST(ReactorTest, RearmPushesDeadlineOut) {
  Reactor r("test");
  std::atomic<int> fires{0};
  TimerId id = r.ScheduleAfter(10 * kMs, [&] { fires.fetch_add(1); });
  const int64_t start = NowNanos();
  EXPECT_TRUE(r.Rearm(id, 60 * kMs));
  ASSERT_TRUE(DrainUntil(r, [&] { return fires.load() == 1; }));
  // The original 10ms deadline must not have fired; only the re-armed one.
  EXPECT_GE(NowNanos() - start, 60 * kMs);
  EXPECT_EQ(fires.load(), 1);
  EXPECT_FALSE(r.Rearm(id, 10 * kMs));  // fired: gone
}

TEST(ReactorTest, RearmedTimerOldWheelSlotIsStale) {
  // Rearm to a *sooner* deadline: the stale far-slot entry must not fire a
  // second time when its slot comes around.
  Reactor r("test");
  std::atomic<int> fires{0};
  TimerId id = r.ScheduleAfter(80 * kMs, [&] { fires.fetch_add(1); });
  EXPECT_TRUE(r.Rearm(id, 5 * kMs));
  ASSERT_TRUE(DrainUntil(r, [&] { return fires.load() == 1; }));
  const int64_t until = NowNanos() + 100 * kMs;
  while (NowNanos() < until) {
    r.PollOnce();
  }
  EXPECT_EQ(fires.load(), 1);
}

TEST(ReactorTest, DriverThreadRunsPostedWork) {
  Reactor r("test");
  r.Start(2);
  EXPECT_EQ(r.num_threads(), 2u);
  Event done;
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    r.Post([&] {
      if (ran.fetch_add(1) + 1 == 100) {
        done.Set();
      }
    });
  }
  EXPECT_TRUE(done.BlockingWait(NowNanos() + 5'000 * kMs));
  EXPECT_EQ(ran.load(), 100);
  r.Shutdown();
  EXPECT_EQ(r.num_threads(), 0u);
}

TEST(ReactorTest, BlockOnCrossThreadWakeup) {
  Reactor r("test");
  r.Start(1);
  auto ev = std::make_shared<Event>();
  // An external thread (not a driver) parks; a timer on the driver fires it.
  r.ScheduleAfter(5 * kMs, [ev] { ev->Set(); });
  EXPECT_TRUE(r.BlockOn(*ev));
  r.Shutdown();
}

TEST(ReactorTest, BlockOnFromDriverDrivesTheLoop) {
  // A continuation running ON the sole driver blocks on an event that only
  // later reactor work can set. Thread-per-wait would deadlock; the drain
  // shim must keep the loop moving.
  Reactor r("test");
  r.Start(1);
  Event outer;
  std::atomic<bool> nested_ok{false};
  r.Post([&] {
    auto inner = std::make_shared<Event>();
    r.ScheduleAfter(5 * kMs, [inner] { inner->Set(); });
    nested_ok = r.BlockOn(*inner);
    outer.Set();
  });
  EXPECT_TRUE(outer.BlockingWait(NowNanos() + 5'000 * kMs));
  EXPECT_TRUE(nested_ok.load());
  r.Shutdown();
}

TEST(ReactorTest, BlockOnWithNoDriversDrains) {
  Reactor r("test");
  auto ev = std::make_shared<Event>();
  r.ScheduleAfter(5 * kMs, [ev] { ev->Set(); });
  // No Start(): the caller itself must drive timers until the event fires.
  EXPECT_TRUE(r.BlockOn(*ev));
}

TEST(ReactorTest, BlockOnDeadline) {
  Reactor r("test");
  Event ev;
  EXPECT_FALSE(r.BlockOn(ev, NowNanos() + 20 * kMs));
}

TEST(ReactorTest, GrowAndShrinkAdjustLogicalSize) {
  Reactor r("test");
  r.Start(1);
  r.Grow(3);
  EXPECT_EQ(r.num_threads(), 4u);
  r.Shrink(2);
  EXPECT_EQ(r.num_threads(), 2u);
  // Retired drivers are logically gone even while parked; surviving drivers
  // still run work.
  Event done;
  r.Post([&] { done.Set(); });
  EXPECT_TRUE(done.BlockingWait(NowNanos() + 5'000 * kMs));
  r.Shrink(10);  // floors at one running driver
  EXPECT_EQ(r.num_threads(), 1u);
  r.Shutdown();
  EXPECT_EQ(r.num_threads(), 0u);
}

TEST(ReactorTest, ShutdownDrainsReadyQueueButDropsTimers) {
  Reactor r("test");
  std::atomic<int> ran{0};
  std::atomic<bool> timer_ran{false};
  r.Post([&] { ran.fetch_add(1); });
  r.Post([&] { ran.fetch_add(1); });
  r.ScheduleAfter(3'600'000 * kMs, [&] { timer_ran = true; });  // 1h out
  r.Shutdown();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(timer_ran.load());
  EXPECT_EQ(r.pending_timers(), 0u);
  // Post-shutdown submissions are rejected.
  EXPECT_FALSE(r.Post([] {}));
  EXPECT_EQ(r.ScheduleAfter(kMs, [] {}), 0u);
  r.Shutdown();  // idempotent
}

TEST(ReactorTest, RunOneReturnsFalseAfterShutdown) {
  Reactor r("test");
  std::atomic<bool> got_false{false};
  std::thread driver([&] {
    while (r.RunOne()) {
    }
    got_false = true;
  });
  Event seen;
  r.Post([&] { seen.Set(); });
  EXPECT_TRUE(seen.BlockingWait(NowNanos() + 5'000 * kMs));
  r.Shutdown();
  driver.join();
  EXPECT_TRUE(got_false.load());
}

TEST(ReactorTest, StressManyOutstandingFutures) {
  // 100k outstanding Events resolved by wheel timers on a bounded driver
  // pool — the tentpole claim in miniature (the full version with latency
  // percentiles lives in bench/bench_reactor.cc).
  constexpr int kFutures = 100'000;
  Reactor r("stress");
  r.Start(2);
  auto remaining = std::make_shared<std::atomic<int>>(kFutures);
  Event all_done;
  std::vector<std::shared_ptr<Event>> events;
  events.reserve(kFutures);
  for (int i = 0; i < kFutures; ++i) {
    auto ev = std::make_shared<Event>();
    ev->OnSet([remaining, &all_done] {
      if (remaining->fetch_sub(1) == 1) {
        all_done.Set();
      }
    });
    events.push_back(ev);
    // Spread deadlines across ~64ms so every wheel slot gets traffic.
    r.ScheduleAfter((i % 64) * kMs, [ev] { ev->Set(); });
  }
  EXPECT_TRUE(all_done.BlockingWait(NowNanos() + 60'000 * kMs));
  EXPECT_EQ(remaining->load(), 0);
  for (const auto& ev : events) {
    EXPECT_TRUE(ev->is_set());
  }
  r.Shutdown();
}

TEST(ReactorTest, CrossThreadPostHammer) {
  // Many producers posting against a small driver pool; every continuation
  // must run exactly once.
  Reactor r("hammer");
  r.Start(3);
  static constexpr int kProducers = 8;
  static constexpr int kPerProducer = 2'000;
  auto count = std::make_shared<std::atomic<int>>(0);
  Event done;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        r.Post([count, &done] {
          if (count->fetch_add(1) + 1 == kProducers * kPerProducer) {
            done.Set();
          }
        });
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_TRUE(done.BlockingWait(NowNanos() + 60'000 * kMs));
  EXPECT_EQ(count->load(), kProducers * kPerProducer);
  r.Shutdown();
}

}  // namespace
}  // namespace skadi
