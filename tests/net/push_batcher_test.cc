// Unit tests of the push batcher: coalescing per (owner, destination),
// size-threshold flush, explicit FlushAll, the reactor tick safety net, and
// the batches/entries counters.
#include "src/net/push_batcher.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/clock.h"

namespace skadi {
namespace {

struct DeliveredBatch {
  NodeId owner;
  NodeId dst;
  std::vector<PushEntry> entries;
};

class PushBatcherTest : public ::testing::Test {
 protected:
  PushBatcher MakeBatcher(int max_batch) {
    return PushBatcher(
        [this](NodeId owner, NodeId dst, std::vector<PushEntry> entries) {
          delivered_.push_back({owner, dst, std::move(entries)});
        },
        max_batch);
  }

  static PushEntry Entry(NodeId dst) {
    return PushEntry{ObjectId::Next(), TaskId::Next(), dst};
  }

  std::vector<DeliveredBatch> delivered_;
};

TEST_F(PushBatcherTest, CoalescesPerDestinationUntilFlushAll) {
  PushBatcher batcher = MakeBatcher(/*max_batch=*/32);
  const NodeId owner(1), a(2), b(3);
  batcher.Add(owner, Entry(a));
  batcher.Add(owner, Entry(a));
  batcher.Add(owner, Entry(b));
  EXPECT_EQ(batcher.pending(), 3u);
  EXPECT_TRUE(delivered_.empty());  // below threshold, no timer wired

  batcher.FlushAll();
  EXPECT_EQ(batcher.pending(), 0u);
  ASSERT_EQ(delivered_.size(), 2u);  // one message per destination, not per push
  size_t total = 0;
  for (const DeliveredBatch& batch : delivered_) {
    EXPECT_EQ(batch.owner, owner);
    total += batch.entries.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST_F(PushBatcherTest, SizeThresholdFlushesInline) {
  PushBatcher batcher = MakeBatcher(/*max_batch=*/2);
  const NodeId owner(1), dst(2);
  batcher.Add(owner, Entry(dst));
  EXPECT_TRUE(delivered_.empty());
  batcher.Add(owner, Entry(dst));  // hits max_batch: flushes on this call
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].entries.size(), 2u);
  EXPECT_EQ(batcher.pending(), 0u);

  // The threshold is per destination: a different dst keeps its own count.
  batcher.Add(owner, Entry(dst));
  batcher.Add(owner, Entry(NodeId(3)));
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(batcher.pending(), 2u);
  batcher.FlushAll();
  EXPECT_EQ(delivered_.size(), 3u);
}

TEST_F(PushBatcherTest, ReactorTickFlushesStragglers) {
  PushBatcher batcher = MakeBatcher(/*max_batch=*/32);
  Reactor reactor;
  batcher.set_reactor(&reactor, /*tick_nanos=*/1'000);
  const NodeId owner(1), dst(2);
  batcher.Add(owner, Entry(dst));
  EXPECT_EQ(batcher.pending(), 1u);

  // Drive the reactor (no dedicated drivers) until the safety-net timer
  // fires the flush; the tick is due ~1us after Add.
  const int64_t deadline = NowNanos() + 2'000'000'000;
  while (delivered_.empty() && NowNanos() < deadline) {
    reactor.PollOnce();
  }
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].entries.size(), 1u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST_F(PushBatcherTest, CountsBatchesAndEntries) {
  PushBatcher batcher = MakeBatcher(/*max_batch=*/32);
  MetricsRegistry metrics;
  batcher.set_metrics(&metrics);
  const NodeId owner(1);
  for (int i = 0; i < 5; ++i) {
    batcher.Add(owner, Entry(NodeId(2)));
  }
  batcher.Add(owner, Entry(NodeId(3)));
  batcher.FlushAll();
  EXPECT_EQ(metrics.GetCounter("runtime.push_batches").value(), 2);
  EXPECT_EQ(metrics.GetCounter("runtime.push_batched_entries").value(), 6);
}

TEST_F(PushBatcherTest, FlushAllOnEmptyIsNoOp) {
  PushBatcher batcher = MakeBatcher(/*max_batch=*/32);
  batcher.FlushAll();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(batcher.pending(), 0u);
}

// Regression: the batcher does not own the reactor, so the 200us safety
// tick used to capture raw `this` and fire into a destroyed batcher. The
// destructor must cancel the armed timer (and wait out an in-flight tick);
// driving the reactor past the deadline afterwards must touch nothing —
// ASan flags the use-after-free if the gate ever regresses.
TEST_F(PushBatcherTest, DestructionWithPendingTickDoesNotTouchFreedBatcher) {
  Reactor reactor("tick-teardown");
  {
    PushBatcher batcher = MakeBatcher(/*max_batch=*/32);
    batcher.set_reactor(&reactor, /*tick_nanos=*/200'000);
    batcher.Add(NodeId(1), Entry(NodeId(2)));
    EXPECT_EQ(batcher.pending(), 1u);
  }  // destroyed with the safety tick still pending
  const int64_t deadline = NowNanos() + 5'000'000;
  while (NowNanos() < deadline) {
    reactor.PollOnce();
  }
  EXPECT_TRUE(delivered_.empty());  // the orphaned tick never flushed
}

// Same race, hammered with real driver threads: every iteration destroys a
// batcher while its tick is due or already running. The destructor's
// cancel + gate-expiry spin must make each destruction safe (TSan matrix).
TEST_F(PushBatcherTest, ArmDestroyHammerWithDriverThreads) {
  Reactor reactor("tick-hammer");
  reactor.Start(2);
  for (int i = 0; i < 100; ++i) {
    PushBatcher batcher = MakeBatcher(/*max_batch=*/32);
    batcher.set_reactor(&reactor, /*tick_nanos=*/1);  // due immediately
    batcher.Add(NodeId(1), Entry(NodeId(2)));
    // ~PushBatcher races the in-flight tick here.
  }
  reactor.Shutdown();
}

}  // namespace
}  // namespace skadi
