#include "src/net/fabric.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : topo_(std::make_shared<Topology>()) {
    a_ = AddServer(0);
    b_ = AddServer(0);
    c_ = AddServer(1);
    fabric_ = std::make_unique<Fabric>(topo_);
  }

  NodeId AddServer(int rack) {
    NodeInfo info;
    info.id = NodeId::Next();
    info.role = NodeRole::kServer;
    info.rack = rack;
    EXPECT_TRUE(topo_->AddNode(info).ok());
    return info.id;
  }

  std::shared_ptr<Topology> topo_;
  std::unique_ptr<Fabric> fabric_;
  NodeId a_, b_, c_;
};

TEST_F(FabricTest, CallInvokesHandlerAndReturnsReply) {
  ASSERT_TRUE(fabric_->RegisterHandler(b_, "echo", [](const Buffer& req) -> Result<Buffer> {
    return Buffer::FromString("re:" + std::string(req.AsStringView()));
  }).ok());
  auto reply = fabric_->Call(a_, b_, "echo", Buffer::FromString("ping"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->AsStringView(), "re:ping");
}

TEST_F(FabricTest, CallToUnknownServiceFails) {
  auto reply = fabric_->Call(a_, b_, "nope", Buffer());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
}

TEST_F(FabricTest, DuplicateServiceRegistrationFails) {
  auto handler = [](const Buffer&) -> Result<Buffer> { return Buffer(); };
  EXPECT_TRUE(fabric_->RegisterHandler(b_, "svc", handler).ok());
  EXPECT_EQ(fabric_->RegisterHandler(b_, "svc", handler).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FabricTest, DeadNodeRejectsCalls) {
  ASSERT_TRUE(fabric_->RegisterHandler(b_, "svc",
                           [](const Buffer&) -> Result<Buffer> { return Buffer(); }).ok());
  fabric_->MarkDead(b_);
  EXPECT_TRUE(fabric_->IsDead(b_));
  EXPECT_EQ(fabric_->Call(a_, b_, "svc", Buffer()).status().code(),
            StatusCode::kUnavailable);
  fabric_->Revive(b_);
  EXPECT_FALSE(fabric_->IsDead(b_));
  EXPECT_TRUE(fabric_->Call(a_, b_, "svc", Buffer()).ok());
}

TEST_F(FabricTest, CallCountsRoundTripMessages) {
  ASSERT_TRUE(fabric_->RegisterHandler(b_, "svc",
                           [](const Buffer&) -> Result<Buffer> { return Buffer(); }).ok());
  int64_t before = fabric_->messages(LinkClass::kIntraRack);
  (void)fabric_->Call(a_, b_, "svc", Buffer::FromString("x"));  // counting, not using the reply
  EXPECT_EQ(fabric_->messages(LinkClass::kIntraRack), before + 2);  // req + reply
  EXPECT_EQ(fabric_->metrics().GetCounter("fabric.control_messages").value(), 2);
}

TEST_F(FabricTest, SendCountsOneWayMessage) {
  ASSERT_TRUE(fabric_->RegisterHandler(b_, "svc",
                           [](const Buffer&) -> Result<Buffer> { return Buffer(); }).ok());
  (void)fabric_->Send(a_, b_, "svc", Buffer::FromString("x"));  // counting, not using the status
  EXPECT_EQ(fabric_->metrics().GetCounter("fabric.control_messages").value(), 1);
}

TEST_F(FabricTest, TransferBytesChargesAndCounts) {
  constexpr int64_t kBytes = 1024 * 1024;
  int64_t nanos = fabric_->TransferBytes(a_, c_, kBytes);
  EXPECT_GT(nanos, 0);
  EXPECT_EQ(fabric_->bytes(LinkClass::kInterRack), kBytes);
  EXPECT_EQ(fabric_->metrics().GetCounter("fabric.data_bytes").value(), kBytes);
  EXPECT_EQ(fabric_->clock().total_nanos(), nanos);
}

TEST_F(FabricTest, InterRackCostsMoreThanIntraRack) {
  constexpr int64_t kBytes = 4 * 1024 * 1024;
  int64_t intra = fabric_->TransferBytes(a_, b_, kBytes);
  int64_t inter = fabric_->TransferBytes(a_, c_, kBytes);
  EXPECT_GT(inter, intra);
}

TEST_F(FabricTest, TransferToDeadNodeAccountsNothing) {
  fabric_->MarkDead(c_);
  EXPECT_EQ(fabric_->TransferBytes(a_, c_, 1024), 0);
  EXPECT_EQ(fabric_->bytes(LinkClass::kInterRack), 0);
}

TEST_F(FabricTest, TotalAggregatesAcrossLinkClasses) {
  fabric_->TransferBytes(a_, b_, 100);  // intra-rack
  fabric_->TransferBytes(a_, c_, 200);  // inter-rack
  EXPECT_EQ(fabric_->total_bytes(), 300);
  EXPECT_EQ(fabric_->total_messages(), 2);
}

TEST_F(FabricTest, HandlerErrorPropagates) {
  ASSERT_TRUE(fabric_->RegisterHandler(b_, "fail", [](const Buffer&) -> Result<Buffer> {
    return Status::Internal("boom");
  }).ok());
  auto reply = fabric_->Call(a_, b_, "fail", Buffer());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
  EXPECT_EQ(reply.status().message(), "boom");
}

TEST_F(FabricTest, VirtualClockAccumulatesPerCall) {
  ASSERT_TRUE(fabric_->RegisterHandler(b_, "svc",
                           [](const Buffer&) -> Result<Buffer> { return Buffer(); }).ok());
  int64_t t0 = fabric_->clock().total_nanos();
  (void)fabric_->Call(a_, b_, "svc", Buffer::FromString("x"));  // timing, not using the reply
  int64_t t1 = fabric_->clock().total_nanos();
  // At least two intra-rack latencies charged.
  EXPECT_GE(t1 - t0, 2 * DefaultLinkParams(LinkClass::kIntraRack).latency_ns);
}

}  // namespace
}  // namespace skadi
