#include "src/ir/ir.h"

#include <gtest/gtest.h>

#include "src/ir/dialects.h"

namespace skadi {
namespace {

TEST(IrFunctionTest, BuildAndVerify) {
  IrFunction fn("q");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId filtered =
      EmitFilter(fn, t, Expr::Binary(BinaryOp::kGt, Expr::Col("x"), Expr::Int(0)));
  ValueId limited = EmitLimit(fn, filtered, 10);
  fn.SetReturns({limited});
  EXPECT_TRUE(fn.Verify().ok());
  EXPECT_EQ(fn.num_ops(), 2u);
}

TEST(IrFunctionTest, TypesTracked) {
  IrFunction fn("t");
  ValueId a = fn.AddParam(IrType::Tensor());
  ValueId b = fn.AddParam(IrType::Tensor());
  ValueId c = EmitMatmul(fn, a, b);
  ValueId m = EmitReduceMean(fn, c);
  fn.SetReturns({m});
  EXPECT_EQ(fn.TypeOf(c)->kind, IrTypeKind::kTensor);
  EXPECT_EQ(fn.TypeOf(m)->kind, IrTypeKind::kScalar);
  EXPECT_TRUE(fn.IsParam(a));
  EXPECT_FALSE(fn.IsParam(c));
}

TEST(IrFunctionTest, VerifyCatchesUndefinedOperand) {
  IrFunction fn("bad");
  fn.AddParam(IrType::Table());
  // Manually emit an op over a foreign value id.
  fn.Emit(kOpRelLimit, {ValueId::Next()}, IrType::Table(), {{"n", IrAttr(int64_t{1})}});
  EXPECT_EQ(fn.Verify().code(), StatusCode::kFailedPrecondition);
}

TEST(IrFunctionTest, VerifyCatchesUndefinedReturn) {
  IrFunction fn("bad2");
  fn.AddParam(IrType::Table());
  fn.SetReturns({ValueId::Next()});
  EXPECT_EQ(fn.Verify().code(), StatusCode::kFailedPrecondition);
}

TEST(IrFunctionTest, ToStringMentionsOpsAndBackend) {
  IrFunction fn("pretty");
  ValueId a = fn.AddParam(IrType::Tensor());
  ValueId r = EmitRelu(fn, a);
  fn.SetReturns({r});
  fn.mutable_ops()[0].backend = DeviceKind::kGpu;
  std::string s = fn.ToString();
  EXPECT_NE(s.find("tensor.relu"), std::string::npos);
  EXPECT_NE(s.find("on gpu"), std::string::npos);
  EXPECT_NE(s.find("func @pretty"), std::string::npos);
}

TEST(IrOpTest, AttrAccessors) {
  IrFunction fn("attrs");
  ValueId t = fn.AddParam(IrType::Table());
  EmitLimit(fn, t, 42);
  const IrOp& op = fn.ops()[0];
  EXPECT_TRUE(op.HasAttr("n"));
  EXPECT_EQ(*op.GetAttr<int64_t>("n"), 42);
  EXPECT_EQ(op.GetAttr<double>("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(op.GetAttr<int64_t>("missing").status().code(), StatusCode::kNotFound);
}

TEST(DialectTest, OpClassMapping) {
  EXPECT_EQ(OpClassOf(kOpRelFilter), OpClass::kFilter);
  EXPECT_EQ(OpClassOf(kOpRelJoin), OpClass::kJoin);
  EXPECT_EQ(OpClassOf(kOpTensorMatmul), OpClass::kMatmul);
  EXPECT_EQ(OpClassOf(kOpTensorRelu), OpClass::kElementwise);
  EXPECT_EQ(OpClassOf(kOpFusedElementwise), OpClass::kElementwise);
  EXPECT_EQ(OpClassOf("mystery.op"), OpClass::kGeneric);
}

TEST(DialectTest, ElementwiseClassification) {
  EXPECT_TRUE(IsElementwiseTensorOp(kOpTensorScale));
  EXPECT_TRUE(IsElementwiseTensorOp(kOpTensorSigmoid));
  EXPECT_FALSE(IsElementwiseTensorOp(kOpTensorMatmul));
  EXPECT_FALSE(IsElementwiseTensorOp(kOpRelFilter));
}

}  // namespace
}  // namespace skadi
