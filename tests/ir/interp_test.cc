#include "src/ir/interp.h"

#include <gtest/gtest.h>

#include "src/ir/dialects.h"

namespace skadi {
namespace {

RecordBatch SalesBatch() {
  Schema schema({{"region", DataType::kString},
                 {"amount", DataType::kInt64}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeString({"east", "west", "east", "north"}),
               Column::MakeInt64({10, 20, 30, 40})});
  return std::move(batch).value();
}

TEST(InterpTest, FilterThenAggregate) {
  IrFunction fn("q");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId filtered =
      EmitFilter(fn, t, Expr::Binary(BinaryOp::kGt, Expr::Col("amount"), Expr::Int(15)));
  ValueId agg = EmitAggregate(fn, filtered, {}, {{AggKind::kSum, "amount", "total"}});
  fn.SetReturns({agg});

  auto out = EvalIrFunction(fn, {SalesBatch()});
  ASSERT_TRUE(out.ok());
  const RecordBatch& result = std::get<RecordBatch>((*out)[0]);
  EXPECT_EQ(result.ColumnByName("total")->Int64At(0), 90);
}

TEST(InterpTest, JoinTwoTables) {
  IrFunction fn("j");
  ValueId left = fn.AddParam(IrType::Table());
  ValueId right = fn.AddParam(IrType::Table());
  ValueId joined = EmitJoin(fn, left, right, {"region"}, {"region"});
  fn.SetReturns({joined});

  Schema dim_schema({{"region", DataType::kString}, {"zone", DataType::kInt64}});
  auto dim = RecordBatch::Make(
      dim_schema, {Column::MakeString({"east", "west"}), Column::MakeInt64({1, 2})});

  auto out = EvalIrFunction(fn, {SalesBatch(), std::move(dim).value()});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::get<RecordBatch>((*out)[0]).num_rows(), 3);
}

TEST(InterpTest, SortAndLimit) {
  IrFunction fn("s");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId sorted = EmitSort(fn, t, {{"amount", false}});
  ValueId top = EmitLimit(fn, sorted, 2);
  fn.SetReturns({top});
  auto out = EvalIrFunction(fn, {SalesBatch()});
  ASSERT_TRUE(out.ok());
  const RecordBatch& result = std::get<RecordBatch>((*out)[0]);
  ASSERT_EQ(result.num_rows(), 2);
  EXPECT_EQ(result.ColumnByName("amount")->Int64At(0), 40);
}

TEST(InterpTest, TensorPipeline) {
  IrFunction fn("ml");
  ValueId x = fn.AddParam(IrType::Tensor());
  ValueId w = fn.AddParam(IrType::Tensor());
  ValueId h = EmitMatmul(fn, x, w);
  ValueId activated = EmitRelu(fn, h);
  ValueId loss = EmitReduceMean(fn, activated);
  fn.SetReturns({loss});

  auto xt = Tensor::FromData({2, 2}, {1, -1, 2, 0});
  auto wt = Tensor::FromData({2, 2}, {1, 0, 0, 1});
  auto out = EvalIrFunction(fn, {*xt, *wt});
  ASSERT_TRUE(out.ok());
  // matmul = [[1,-1],[2,0]]; relu = [[1,0],[2,0]]; mean = 3/4.
  EXPECT_DOUBLE_EQ(std::get<double>((*out)[0]), 0.75);
}

TEST(InterpTest, FusedElementwiseChainMatchesUnfused) {
  // Build the unfused version.
  IrFunction unfused("u");
  ValueId x1 = unfused.AddParam(IrType::Tensor());
  ValueId s1 = EmitScale(unfused, x1, 2.0);
  ValueId r1 = EmitRelu(unfused, s1);
  ValueId g1 = EmitSigmoid(unfused, r1);
  unfused.SetReturns({g1});

  // Hand-build the fused version.
  IrFunction fused("f");
  ValueId x2 = fused.AddParam(IrType::Tensor());
  ValueId out2 = fused.Emit(
      kOpFusedElementwise, {x2}, IrType::Tensor(),
      {{"sub_ops", IrAttr(std::vector<std::string>{
                       std::string(kOpTensorScale) + ":2.000000", kOpTensorRelu,
                       kOpTensorSigmoid})}});
  fused.SetReturns({out2});

  Rng rng(3);
  Tensor input = Tensor::Random({4, 4}, rng);
  IrExecStats unfused_stats;
  IrExecStats fused_stats;
  auto a = EvalIrFunction(unfused, {input}, &unfused_stats);
  auto b = EvalIrFunction(fused, {input}, &fused_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Tensor& ta = std::get<Tensor>((*a)[0]);
  const Tensor& tb = std::get<Tensor>((*b)[0]);
  for (size_t i = 0; i < ta.data().size(); ++i) {
    EXPECT_NEAR(ta.data()[i], tb.data()[i], 1e-12);
  }
  EXPECT_EQ(unfused_stats.ops_executed, 3);
  EXPECT_EQ(fused_stats.ops_executed, 1);
  EXPECT_LT(fused_stats.bytes_materialized, unfused_stats.bytes_materialized);
}

TEST(InterpTest, ArgCountMismatchRejected) {
  IrFunction fn("n");
  fn.AddParam(IrType::Table());
  fn.SetReturns({fn.params()[0]});
  auto out = EvalIrFunction(fn, {});
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(InterpTest, TypeMismatchRejected) {
  IrFunction fn("m");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId r = EmitRelu(fn, t);  // relu over a table: invalid at run time
  fn.SetReturns({r});
  auto out = EvalIrFunction(fn, {SalesBatch()});
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(InterpTest, MultipleReturns) {
  IrFunction fn("multi");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId a = EmitLimit(fn, t, 1);
  ValueId b = EmitLimit(fn, t, 2);
  fn.SetReturns({a, b});
  auto out = EvalIrFunction(fn, {SalesBatch()});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::get<RecordBatch>((*out)[0]).num_rows(), 1);
  EXPECT_EQ(std::get<RecordBatch>((*out)[1]).num_rows(), 2);
}

TEST(InterpTest, StatsCountBytes) {
  IrFunction fn("bytes");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId limited = EmitLimit(fn, t, 2);
  fn.SetReturns({limited});
  IrExecStats stats;
  ASSERT_TRUE(EvalIrFunction(fn, {SalesBatch()}, &stats).ok());
  EXPECT_EQ(stats.ops_executed, 1);
  EXPECT_GT(stats.bytes_materialized, 0);
}

}  // namespace
}  // namespace skadi
