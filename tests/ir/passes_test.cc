#include "src/ir/passes.h"

#include <gtest/gtest.h>

#include "src/ir/dialects.h"
#include "src/ir/interp.h"

namespace skadi {
namespace {

RecordBatch NumbersBatch() {
  Schema schema({{"x", DataType::kInt64}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeInt64({-2, -1, 0, 1, 2, 3, 4, 5})});
  return std::move(batch).value();
}

TEST(DceTest, RemovesUnusedOps) {
  IrFunction fn("dce");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId used = EmitLimit(fn, t, 3);
  EmitLimit(fn, t, 5);  // dead
  EmitLimit(fn, used, 1);  // also dead (result unused)
  fn.SetReturns({used});

  PassStats stats;
  ASSERT_TRUE(RunDce(fn, &stats).ok());
  EXPECT_EQ(fn.num_ops(), 1u);
  EXPECT_EQ(stats.ops_removed, 2);
}

TEST(DceTest, KeepsTransitivelyUsedOps) {
  IrFunction fn("keep");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId a = EmitLimit(fn, t, 5);
  ValueId b = EmitLimit(fn, a, 3);
  fn.SetReturns({b});
  ASSERT_TRUE(RunDce(fn).ok());
  EXPECT_EQ(fn.num_ops(), 2u);
}

TEST(CseTest, DeduplicatesIdenticalOps) {
  IrFunction fn("cse");
  ValueId t = fn.AddParam(IrType::Table());
  ExprPtr pred = Expr::Binary(BinaryOp::kGt, Expr::Col("x"), Expr::Int(0));
  ValueId f1 = EmitFilter(fn, t, pred);
  ValueId f2 = EmitFilter(fn, t, pred);
  ValueId j = EmitJoin(fn, f1, f2, {"x"}, {"x"});
  fn.SetReturns({j});

  PassStats stats;
  ASSERT_TRUE(RunCse(fn, &stats).ok());
  EXPECT_EQ(stats.ops_removed, 1);
  EXPECT_EQ(fn.num_ops(), 2u);  // one filter + the join
  // Join now uses the same value twice.
  EXPECT_EQ(fn.ops()[1].operands[0], fn.ops()[1].operands[1]);
}

TEST(CseTest, DifferentAttrsNotMerged) {
  IrFunction fn("cse2");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId a = EmitLimit(fn, t, 3);
  ValueId b = EmitLimit(fn, t, 4);
  fn.SetReturns({a, b});
  PassStats stats;
  ASSERT_TRUE(RunCse(fn, &stats).ok());
  EXPECT_EQ(stats.ops_removed, 0);
  EXPECT_EQ(fn.num_ops(), 2u);
}

TEST(MergeFiltersTest, CombinesPredicatesAndPreservesSemantics) {
  IrFunction fn("mf");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId f1 = EmitFilter(fn, t, Expr::Binary(BinaryOp::kGt, Expr::Col("x"), Expr::Int(0)));
  ValueId f2 =
      EmitFilter(fn, f1, Expr::Binary(BinaryOp::kLt, Expr::Col("x"), Expr::Int(4)));
  fn.SetReturns({f2});

  auto before = EvalIrFunction(fn, {NumbersBatch()});
  ASSERT_TRUE(before.ok());

  PassStats stats;
  ASSERT_TRUE(RunMergeFilters(fn, &stats).ok());
  EXPECT_EQ(stats.ops_fused, 1);
  EXPECT_EQ(fn.num_ops(), 1u);

  auto after = EvalIrFunction(fn, {NumbersBatch()});
  ASSERT_TRUE(after.ok());
  const RecordBatch& b0 = std::get<RecordBatch>((*before)[0]);
  const RecordBatch& b1 = std::get<RecordBatch>((*after)[0]);
  ASSERT_EQ(b0.num_rows(), b1.num_rows());
  EXPECT_EQ(b1.num_rows(), 3);  // 1, 2, 3
}

TEST(FuseElementwiseTest, FusesUnaryChain) {
  IrFunction fn("fe");
  ValueId x = fn.AddParam(IrType::Tensor());
  ValueId s = EmitScale(fn, x, 3.0);
  ValueId r = EmitRelu(fn, s);
  ValueId g = EmitSigmoid(fn, r);
  fn.SetReturns({g});

  Rng rng(9);
  Tensor input = Tensor::Random({8, 8}, rng);
  auto before = EvalIrFunction(fn, {input});
  ASSERT_TRUE(before.ok());

  PassStats stats;
  ASSERT_TRUE(RunFuseElementwise(fn, &stats).ok());
  EXPECT_EQ(fn.num_ops(), 1u);
  EXPECT_EQ(fn.ops()[0].opcode, kOpFusedElementwise);
  EXPECT_EQ(stats.ops_fused, 2);

  auto after = EvalIrFunction(fn, {input});
  ASSERT_TRUE(after.ok());
  const Tensor& t0 = std::get<Tensor>((*before)[0]);
  const Tensor& t1 = std::get<Tensor>((*after)[0]);
  for (size_t i = 0; i < t0.data().size(); ++i) {
    EXPECT_NEAR(t0.data()[i], t1.data()[i], 1e-9);
  }
}

TEST(FuseElementwiseTest, MultiUseIntermediateNotFused) {
  IrFunction fn("fe2");
  ValueId x = fn.AddParam(IrType::Tensor());
  ValueId s = EmitScale(fn, x, 2.0);
  ValueId r = EmitRelu(fn, s);
  fn.SetReturns({s, r});  // s used twice (return + relu)
  ASSERT_TRUE(RunFuseElementwise(fn).ok());
  EXPECT_EQ(fn.num_ops(), 2u);
}

TEST(FuseElementwiseTest, BinaryOpsBreakChains) {
  IrFunction fn("fe3");
  ValueId x = fn.AddParam(IrType::Tensor());
  ValueId y = fn.AddParam(IrType::Tensor());
  ValueId s = EmitScale(fn, x, 2.0);
  ValueId a = EmitAdd(fn, s, y);  // binary: not fusable into the chain
  ValueId r = EmitRelu(fn, a);
  fn.SetReturns({r});
  ASSERT_TRUE(RunFuseElementwise(fn).ok());
  // scale stays, add stays, relu stays (relu's producer is binary).
  EXPECT_EQ(fn.num_ops(), 3u);
}

TEST(FuseFilterProjectTest, FusesAndPreservesSemantics) {
  IrFunction fn("fp");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId f = EmitFilter(fn, t, Expr::Binary(BinaryOp::kGe, Expr::Col("x"), Expr::Int(2)));
  ValueId p = EmitProject(
      fn, f, {{Expr::Binary(BinaryOp::kMul, Expr::Col("x"), Expr::Int(10)), "x10"}});
  fn.SetReturns({p});

  auto before = EvalIrFunction(fn, {NumbersBatch()});
  ASSERT_TRUE(before.ok());

  PassStats stats;
  ASSERT_TRUE(RunFuseFilterProject(fn, &stats).ok());
  EXPECT_EQ(stats.ops_fused, 1);
  EXPECT_EQ(fn.num_ops(), 1u);
  EXPECT_EQ(fn.ops()[0].opcode, kOpFusedFilterProject);

  auto after = EvalIrFunction(fn, {NumbersBatch()});
  ASSERT_TRUE(after.ok());
  const RecordBatch& b = std::get<RecordBatch>((*after)[0]);
  EXPECT_EQ(b.num_rows(), std::get<RecordBatch>((*before)[0]).num_rows());
  EXPECT_EQ(b.ColumnByName("x10")->Int64At(0), 20);
}

TEST(SelectBackendsTest, MatmulPrefersGpuFilterPrefersFpga) {
  IrFunction fn("sel");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId x = fn.AddParam(IrType::Tensor());
  ValueId f = EmitFilter(fn, t, Expr::Bool(true));
  ValueId m = EmitMatmul(fn, x, x);
  fn.SetReturns({f, m});

  ASSERT_TRUE(RunSelectBackends(
                  fn, {DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kFpga},
                  /*assumed_bytes=*/64 << 20)
                  .ok());
  EXPECT_EQ(fn.ops()[0].backend, DeviceKind::kFpga);
  EXPECT_EQ(fn.ops()[1].backend, DeviceKind::kGpu);
}

TEST(SelectBackendsTest, SingleBackendAlwaysChosen) {
  IrFunction fn("sel1");
  ValueId x = fn.AddParam(IrType::Tensor());
  ValueId m = EmitMatmul(fn, x, x);
  fn.SetReturns({m});
  ASSERT_TRUE(RunSelectBackends(fn, {DeviceKind::kCpu}).ok());
  EXPECT_EQ(fn.ops()[0].backend, DeviceKind::kCpu);
}

TEST(SelectBackendsTest, NoBackendsRejected) {
  IrFunction fn("sel0");
  EXPECT_EQ(RunSelectBackends(fn, {}).code(), StatusCode::kInvalidArgument);
}

TEST(PassManagerTest, StandardPipelineShrinksMixedProgram) {
  IrFunction fn("std");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId x = fn.AddParam(IrType::Tensor());
  // Relational chain with a redundant duplicate filter.
  ExprPtr p1 = Expr::Binary(BinaryOp::kGt, Expr::Col("x"), Expr::Int(0));
  ValueId f1 = EmitFilter(fn, t, p1);
  ValueId f2 = EmitFilter(fn, f1, Expr::Binary(BinaryOp::kLt, Expr::Col("x"), Expr::Int(5)));
  ValueId proj = EmitProject(fn, f2, {{Expr::Col("x"), "x"}});
  // Tensor chain.
  ValueId s = EmitScale(fn, x, 0.5);
  ValueId r = EmitRelu(fn, s);
  // Dead op.
  EmitLimit(fn, t, 9);
  fn.SetReturns({proj, r});

  size_t before_ops = fn.num_ops();
  PassStats stats;
  ASSERT_TRUE(PassManager::StandardPipeline().Run(fn, &stats).ok());
  EXPECT_LT(fn.num_ops(), before_ops);
  // filters merged + filter+project fused => 1 relational op;
  // scale+relu fused => 1 tensor op; dead limit removed.
  EXPECT_EQ(fn.num_ops(), 2u);
  ASSERT_TRUE(fn.Verify().ok());

  auto out = EvalIrFunction(fn, {NumbersBatch(), Tensor::Zeros({2, 2})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::get<RecordBatch>((*out)[0]).num_rows(), 4);  // 1..4
}

TEST(PassManagerTest, UnknownPassRejected) {
  IrFunction fn("u");
  PassManager pm;
  pm.Add("not-a-pass");
  EXPECT_EQ(pm.Run(fn).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace skadi
