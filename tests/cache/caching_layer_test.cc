#include "src/cache/caching_layer.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

namespace skadi {
namespace {

constexpr int64_t kMiB = 1024 * 1024;

// Three servers in two racks, one memory blade, one durable store.
class CachingLayerTest : public ::testing::Test {
 protected:
  CachingLayerTest() : topo_(std::make_shared<Topology>()) {
    a_ = AddNode(NodeRole::kServer, 0);
    b_ = AddNode(NodeRole::kServer, 0);
    c_ = AddNode(NodeRole::kServer, 1);
    blade_ = AddNode(NodeRole::kMemoryBlade, 1);
    durable_ = AddNode(NodeRole::kDurableStore, 0);
    fabric_ = std::make_unique<Fabric>(topo_);
  }

  NodeId AddNode(NodeRole role, int rack) {
    NodeInfo info;
    info.id = NodeId::Next();
    info.role = role;
    info.rack = rack;
    EXPECT_TRUE(topo_->AddNode(info).ok());
    return info.id;
  }

  std::unique_ptr<CachingLayer> MakeLayer(CachingLayerOptions options = {},
                                          int64_t store_capacity = 64 * kMiB) {
    auto layer = std::make_unique<CachingLayer>(fabric_.get(), options);
    for (NodeId node : {a_, b_, c_}) {
      layer->RegisterStore(node,
                           std::make_shared<LocalObjectStore>(DeviceId::Next(), store_capacity));
    }
    layer->RegisterStore(
        blade_, std::make_shared<LocalObjectStore>(DeviceId::Next(), 256 * kMiB),
        /*is_memory_blade=*/true);
    layer->RegisterDurableNode(durable_);
    return layer;
  }

  std::shared_ptr<Topology> topo_;
  std::unique_ptr<Fabric> fabric_;
  NodeId a_, b_, c_, blade_, durable_;
};

TEST_F(CachingLayerTest, PutGetLocalIsFree) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::FromString("data"), a_).ok());
  int64_t bytes_before = fabric_->total_bytes();
  auto r = layer->Get(id, a_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsStringView(), "data");
  EXPECT_EQ(fabric_->total_bytes(), bytes_before);  // local hit: no fabric traffic
}

TEST_F(CachingLayerTest, RemoteGetChargesTransfer) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  Buffer data = Buffer::Zeros(kMiB);
  ASSERT_TRUE(layer->Put(id, data, a_).ok());
  auto r = layer->Get(id, c_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fabric_->bytes(LinkClass::kInterRack), kMiB);
}

TEST_F(CachingLayerTest, CacheLocallyAddsLocation) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(1024), a_).ok());
  ASSERT_TRUE(layer->Get(id, c_, /*cache_locally=*/true).ok());
  auto locations = layer->Locations(id);
  EXPECT_EQ(locations.size(), 2u);
  // Second get is now local: no new fabric bytes.
  int64_t bytes_before = fabric_->total_bytes();
  ASSERT_TRUE(layer->Get(id, c_).ok());
  EXPECT_EQ(fabric_->total_bytes(), bytes_before);
}

TEST_F(CachingLayerTest, GetPrefersNearestReplica) {
  CachingLayerOptions options;
  options.replication_factor = 2;
  auto layer = MakeLayer(options);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(kMiB), a_).ok());
  // Replica lands on b_ (same rack as a_). Reader on b_: local hit.
  ASSERT_EQ(layer->Locations(id).size(), 2u);
  int64_t inter_before = fabric_->bytes(LinkClass::kInterRack);
  ASSERT_TRUE(layer->Get(id, b_).ok());
  EXPECT_EQ(fabric_->bytes(LinkClass::kInterRack), inter_before);
}

TEST_F(CachingLayerTest, DuplicatePutRejected) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(8), a_).ok());
  EXPECT_EQ(layer->Put(id, Buffer::Zeros(8), b_).code(), StatusCode::kAlreadyExists);
}

TEST_F(CachingLayerTest, PutToUnknownNodeFails) {
  auto layer = MakeLayer();
  EXPECT_EQ(layer->Put(ObjectId::Next(), Buffer::Zeros(8), NodeId(9999)).code(),
            StatusCode::kNotFound);
}

TEST_F(CachingLayerTest, DeleteRemovesEverywhere) {
  CachingLayerOptions options;
  options.replication_factor = 3;
  auto layer = MakeLayer(options);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(8), a_).ok());
  EXPECT_EQ(layer->Locations(id).size(), 3u);
  ASSERT_TRUE(layer->Delete(id).ok());
  EXPECT_FALSE(layer->Exists(id));
  EXPECT_EQ(layer->StoreOf(a_)->num_objects(), 0u);
  EXPECT_EQ(layer->StoreOf(b_)->num_objects(), 0u);
}

TEST_F(CachingLayerTest, SizeOfReportsBytes) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(12345), a_).ok());
  auto size = layer->SizeOf(id);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 12345);
}

TEST_F(CachingLayerTest, MigrateMovesData) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(kMiB), a_).ok());
  ASSERT_TRUE(layer->Migrate(id, c_).ok());
  auto locations = layer->Locations(id);
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0], c_);
  EXPECT_FALSE(layer->StoreOf(a_)->Contains(id));
  EXPECT_TRUE(layer->StoreOf(c_)->Contains(id));
}

TEST_F(CachingLayerTest, ReplicaSurvivesNodeFailure) {
  CachingLayerOptions options;
  options.replication_factor = 2;
  auto layer = MakeLayer(options);
  ObjectId id = ObjectId::Next();
  Buffer data = Buffer::FromString("precious");
  ASSERT_TRUE(layer->Put(id, data, a_).ok());

  fabric_->MarkDead(a_);
  layer->OnNodeFailure(a_);

  auto r = layer->Get(id, c_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsStringView(), "precious");
  EXPECT_TRUE(layer->LostObjects().empty());
}

TEST_F(CachingLayerTest, UnreplicatedObjectLostOnFailure) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(8), a_).ok());
  fabric_->MarkDead(a_);
  layer->OnNodeFailure(a_);
  EXPECT_EQ(layer->Get(id, b_).status().code(), StatusCode::kDataLoss);
  auto lost = layer->LostObjects();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], id);
}

TEST_F(CachingLayerTest, EcObjectSurvivesNodeFailure) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  Buffer data = Buffer::Zeros(4096);
  // 4 nodes registered (a, b, c, blade): EC(2,2) spreads over all 4.
  ASSERT_TRUE(layer->PutEc(id, data, {2, 2}).ok());
  fabric_->MarkDead(a_);
  layer->OnNodeFailure(a_);
  auto r = layer->Get(id, b_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4096u);
  EXPECT_EQ(*r, data);
}

TEST_F(CachingLayerTest, EcNeedsEnoughNodes) {
  auto layer = MakeLayer();
  EXPECT_EQ(layer->PutEc(ObjectId::Next(), Buffer::Zeros(64), {8, 4}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CachingLayerTest, DurablePutGetChargesDurableLink) {
  auto layer = MakeLayer();
  Buffer data = Buffer::Zeros(kMiB);
  ASSERT_TRUE(layer->PutDurable("stage1/out", data, a_).ok());
  auto r = layer->GetDurable("stage1/out", c_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fabric_->bytes(LinkClass::kDurable), 2 * kMiB);  // up + down
}

TEST_F(CachingLayerTest, DurableMissingKeyFails) {
  auto layer = MakeLayer();
  EXPECT_EQ(layer->GetDurable("nope", a_).status().code(), StatusCode::kNotFound);
}

TEST_F(CachingLayerTest, DurableIsSlowerThanCachePath) {
  auto layer = MakeLayer();
  Buffer data = Buffer::Zeros(8 * kMiB);

  fabric_->clock().Reset();
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, data, a_).ok());
  (void)layer->Get(id, b_);  // timing the fetch, not using the value
  int64_t cache_nanos = fabric_->clock().total_nanos();

  fabric_->clock().Reset();
  ASSERT_TRUE(layer->PutDurable("k", data, a_).ok());
  (void)layer->GetDurable("k", b_);  // timing the fetch, not using the value
  int64_t durable_nanos = fabric_->clock().total_nanos();

  EXPECT_GT(durable_nanos, 5 * cache_nanos);
}

TEST_F(CachingLayerTest, SpillToBladeKeepsObjectReachable) {
  auto layer = MakeLayer({}, /*store_capacity=*/2 * kMiB);
  ASSERT_TRUE(layer->EnableSpillToBlade(a_).ok());

  ObjectId first = ObjectId::Next();
  ObjectId second = ObjectId::Next();
  ASSERT_TRUE(layer->Put(first, Buffer::Zeros(kMiB + kMiB / 2), a_).ok());
  ASSERT_TRUE(layer->Put(second, Buffer::Zeros(kMiB + kMiB / 2), a_).ok());

  // `first` was spilled to the blade, not lost.
  auto locations = layer->Locations(first);
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0], blade_);
  auto r = layer->Get(first, a_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(fabric_->metrics().GetCounter("cache.spill_bytes").value(), 0);
}

TEST_F(CachingLayerTest, SpillWithoutBladesFails) {
  auto layer = std::make_unique<CachingLayer>(fabric_.get());
  layer->RegisterStore(a_, std::make_shared<LocalObjectStore>(DeviceId::Next(), kMiB));
  EXPECT_EQ(layer->EnableSpillToBlade(a_).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CachingLayerTest, ConcurrentRemoteGetsAreSingleFlight) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  std::string payload(512 * 1024, 'x');
  ASSERT_TRUE(layer->Put(id, Buffer::FromString(payload), a_).ok());
  fabric_->metrics().GetCounter("cache.remote_fetches").Reset();
  fabric_->metrics().GetCounter("cache.coalesced_fetches").Reset();

  constexpr int kReaders = 16;
  std::vector<std::thread> readers;
  std::vector<Result<Buffer>> results(kReaders, Status::Internal("unset"));
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] { results[i] = layer->Get(id, b_); });
  }
  for (auto& t : readers) {
    t.join();
  }

  for (int i = 0; i < kReaders; ++i) {
    ASSERT_TRUE(results[i].ok()) << "reader " << i;
    EXPECT_EQ(results[i]->size(), payload.size());
  }
  // Every Get either led a fetch or coalesced onto one; the deterministic
  // invariant is the sum (exact split depends on thread interleaving).
  int64_t leaders = fabric_->metrics().GetCounter("cache.remote_fetches").value();
  int64_t followers = fabric_->metrics().GetCounter("cache.coalesced_fetches").value();
  EXPECT_EQ(leaders + followers, kReaders);
  EXPECT_GE(leaders, 1);
  // Coalesced readers share storage with their leader's buffer: at most
  // `leaders` distinct data pointers among the results.
  std::set<const uint8_t*> distinct;
  for (const auto& r : results) {
    distinct.insert(r->data());
  }
  EXPECT_LE(static_cast<int64_t>(distinct.size()), leaders);
}

TEST_F(CachingLayerTest, SingleFlightPropagatesFailureToFollowers) {
  auto layer = MakeLayer();
  ObjectId id = ObjectId::Next();
  // Nothing stored: every Get must fail fast with NotFound, including any
  // that would have coalesced (no flight exists for a directory miss).
  auto r = layer->Get(id, b_);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CachingLayerTest, ReplicationSkipsBladesAndDeadNodes) {
  fabric_->MarkDead(b_);
  CachingLayerOptions options;
  options.replication_factor = 3;
  auto layer = MakeLayer(options);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(layer->Put(id, Buffer::Zeros(64), a_).ok());
  auto locations = layer->Locations(id);
  // a_ + c_ only: b_ dead, blade excluded.
  ASSERT_EQ(locations.size(), 2u);
  for (NodeId n : locations) {
    EXPECT_NE(n, blade_);
    EXPECT_NE(n, b_);
  }
}

}  // namespace
}  // namespace skadi
