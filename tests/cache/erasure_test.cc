#include "src/cache/erasure.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace skadi {
namespace {

Buffer RandomData(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(size);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.NextBounded(256));
  }
  return Buffer(std::move(bytes));
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(Gf256Test, MulCommutative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 13) {
      EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                Gf256::Mul(static_cast<uint8_t>(b), static_cast<uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, InverseRoundTrips) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = Gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  EXPECT_EQ(Gf256::Div(Gf256::Mul(37, 91), 91), 37);
}

TEST(Gf256Test, MulDistributesOverAdd) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.NextBounded(256));
    uint8_t b = static_cast<uint8_t>(rng.NextBounded(256));
    uint8_t c = static_cast<uint8_t>(rng.NextBounded(256));
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
  }
}

TEST(EcTest, EncodeProducesKPlusMEqualShards) {
  Buffer data = RandomData(1000, 1);
  auto shards = EcEncode(data, {4, 2});
  ASSERT_TRUE(shards.ok());
  EXPECT_EQ(shards->size(), 6u);
  for (const Buffer& s : *shards) {
    EXPECT_EQ(s.size(), 250u);
  }
}

TEST(EcTest, DecodeWithAllShards) {
  Buffer data = RandomData(997, 2);  // non-divisible size exercises padding
  EcConfig config{4, 2};
  auto shards = EcEncode(data, config);
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Buffer>> slots(shards->begin(), shards->end());
  auto decoded = EcDecode(slots, config, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(EcTest, DecodeWithAnyTwoShardsLost) {
  Buffer data = RandomData(4096, 3);
  EcConfig config{4, 2};
  auto shards = EcEncode(data, config);
  ASSERT_TRUE(shards.ok());
  // Try every pair of losses.
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) {
      std::vector<std::optional<Buffer>> slots(shards->begin(), shards->end());
      slots[i] = std::nullopt;
      slots[j] = std::nullopt;
      auto decoded = EcDecode(slots, config, data.size());
      ASSERT_TRUE(decoded.ok()) << "lost shards " << i << "," << j;
      EXPECT_EQ(*decoded, data) << "lost shards " << i << "," << j;
    }
  }
}

TEST(EcTest, ThreeLossesUnrecoverable) {
  Buffer data = RandomData(512, 4);
  EcConfig config{4, 2};
  auto shards = EcEncode(data, config);
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Buffer>> slots(shards->begin(), shards->end());
  slots[0] = std::nullopt;
  slots[2] = std::nullopt;
  slots[5] = std::nullopt;
  auto decoded = EcDecode(slots, config, data.size());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(EcTest, InvalidConfigRejected) {
  Buffer data = RandomData(100, 5);
  EXPECT_FALSE(EcEncode(data, {0, 2}).ok());
  EXPECT_FALSE(EcEncode(data, {200, 100}).ok());
}

TEST(EcTest, WrongSlotCountRejected) {
  Buffer data = RandomData(100, 6);
  auto shards = EcEncode(data, {2, 1});
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Buffer>> slots(shards->begin(), shards->end());
  slots.pop_back();
  EXPECT_EQ(EcDecode(slots, {2, 1}, 100).status().code(), StatusCode::kInvalidArgument);
}

TEST(EcTest, EmptyBufferRoundTrips) {
  Buffer data;
  EcConfig config{3, 2};
  auto shards = EcEncode(data, config);
  ASSERT_TRUE(shards.ok());
  std::vector<std::optional<Buffer>> slots(shards->begin(), shards->end());
  auto decoded = EcDecode(slots, config, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 0u);
}

// Property sweep over (k, m) configurations: losing exactly m shards (the
// worst tolerable case) always reconstructs.
class EcSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EcSweep, WorstCaseLossReconstructs) {
  auto [k, m] = GetParam();
  Buffer data = RandomData(1024 + static_cast<size_t>(k), static_cast<uint64_t>(k * 100 + m));
  EcConfig config{k, m};
  auto shards = EcEncode(data, config);
  ASSERT_TRUE(shards.ok());
  // Lose the LAST m shards... and separately the FIRST m (data) shards.
  for (bool lose_front : {false, true}) {
    std::vector<std::optional<Buffer>> slots(shards->begin(), shards->end());
    for (int i = 0; i < m; ++i) {
      slots[lose_front ? static_cast<size_t>(i) : slots.size() - 1 - static_cast<size_t>(i)] =
          std::nullopt;
    }
    auto decoded = EcDecode(slots, config, data.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, EcSweep,
                         ::testing::Values(std::pair{2, 1}, std::pair{2, 2},
                                           std::pair{3, 2}, std::pair{4, 2},
                                           std::pair{4, 3}, std::pair{6, 3},
                                           std::pair{8, 4}, std::pair{10, 4}));

}  // namespace
}  // namespace skadi
