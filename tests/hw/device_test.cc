#include "src/hw/device.h"

#include <set>

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(DeviceTest, PresetsHaveDistinctIds) {
  std::set<DeviceId> ids;
  ids.insert(MakeCpuDevice("c").id);
  ids.insert(MakeGpuDevice("g").id);
  ids.insert(MakeFpgaDevice("f").id);
  ids.insert(MakeDpuDevice("d").id);
  ids.insert(MakeMemoryBladeDevice("m", 1024).id);
  EXPECT_EQ(ids.size(), 5u);
}

TEST(DeviceTest, PresetKindsMatch) {
  EXPECT_EQ(MakeCpuDevice("c").kind, DeviceKind::kCpu);
  EXPECT_EQ(MakeGpuDevice("g").kind, DeviceKind::kGpu);
  EXPECT_EQ(MakeFpgaDevice("f").kind, DeviceKind::kFpga);
  EXPECT_EQ(MakeDpuDevice("d").kind, DeviceKind::kDpu);
  EXPECT_EQ(MakeMemoryBladeDevice("m", 1024).kind, DeviceKind::kMemoryBlade);
}

TEST(DeviceTest, MemoryBladeHasNoCompute) {
  EXPECT_FALSE(MakeMemoryBladeDevice("m", 1024).has_compute());
  EXPECT_TRUE(MakeCpuDevice("c").has_compute());
  EXPECT_TRUE(MakeGpuDevice("g").has_compute());
}

TEST(DeviceTest, MemoryBladeCapacityIsCallerControlled) {
  EXPECT_EQ(MakeMemoryBladeDevice("m", 123456).memory_bytes, 123456);
}

TEST(DeviceTest, KindAndOpClassNames) {
  EXPECT_EQ(DeviceKindName(DeviceKind::kGpu), "gpu");
  EXPECT_EQ(DeviceKindName(DeviceKind::kMemoryBlade), "memblade");
  EXPECT_EQ(OpClassName(OpClass::kMatmul), "matmul");
  EXPECT_EQ(OpClassName(OpClass::kShuffleWrite), "shuffle_write");
}

TEST(DeviceTest, GpuFasterBaseRateThanCpu) {
  EXPECT_GT(MakeGpuDevice("g").base_bytes_per_sec, MakeCpuDevice("c").base_bytes_per_sec);
}

}  // namespace
}  // namespace skadi
