#include "src/hw/topology.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

NodeInfo MakeServer(int rack) {
  NodeInfo info;
  info.id = NodeId::Next();
  info.role = NodeRole::kServer;
  info.name = "server";
  info.rack = rack;
  info.devices.push_back(MakeCpuDevice("cpu"));
  return info;
}

TEST(TopologyTest, AddAndGetNode) {
  Topology topo;
  NodeInfo server = MakeServer(0);
  NodeId id = server.id;
  ASSERT_TRUE(topo.AddNode(server).ok());
  const NodeInfo* got = topo.GetNode(id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->rack, 0);
  EXPECT_EQ(got->role, NodeRole::kServer);
}

TEST(TopologyTest, DuplicateAddFails) {
  Topology topo;
  NodeInfo server = MakeServer(0);
  ASSERT_TRUE(topo.AddNode(server).ok());
  Status s = topo.AddNode(server);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(TopologyTest, InvalidIdRejected) {
  Topology topo;
  NodeInfo bad;
  EXPECT_EQ(topo.AddNode(bad).code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ClassifySameNodeIsLocal) {
  Topology topo;
  NodeInfo a = MakeServer(0);
  ASSERT_TRUE(topo.AddNode(a).ok());
  EXPECT_EQ(topo.Classify(a.id, a.id), LinkClass::kLocal);
}

TEST(TopologyTest, ClassifySameRackIsIntraRack) {
  Topology topo;
  NodeInfo a = MakeServer(1);
  NodeInfo b = MakeServer(1);
  ASSERT_TRUE(topo.AddNode(a).ok());
  ASSERT_TRUE(topo.AddNode(b).ok());
  EXPECT_EQ(topo.Classify(a.id, b.id), LinkClass::kIntraRack);
}

TEST(TopologyTest, ClassifyDifferentRackIsInterRack) {
  Topology topo;
  NodeInfo a = MakeServer(0);
  NodeInfo b = MakeServer(1);
  ASSERT_TRUE(topo.AddNode(a).ok());
  ASSERT_TRUE(topo.AddNode(b).ok());
  EXPECT_EQ(topo.Classify(a.id, b.id), LinkClass::kInterRack);
}

TEST(TopologyTest, DurableStoreAlwaysDurableClass) {
  Topology topo;
  NodeInfo a = MakeServer(0);
  NodeInfo durable;
  durable.id = NodeId::Next();
  durable.role = NodeRole::kDurableStore;
  durable.rack = 0;  // same rack: still classified durable
  ASSERT_TRUE(topo.AddNode(a).ok());
  ASSERT_TRUE(topo.AddNode(durable).ok());
  EXPECT_EQ(topo.Classify(a.id, durable.id), LinkClass::kDurable);
  EXPECT_EQ(topo.Classify(durable.id, a.id), LinkClass::kDurable);
}

TEST(TopologyTest, UnknownNodesClassifyConservatively) {
  Topology topo;
  EXPECT_EQ(topo.Classify(NodeId(991), NodeId(992)), LinkClass::kInterRack);
}

TEST(TopologyTest, TransferCostOrdering) {
  Topology topo;
  NodeInfo a = MakeServer(0);
  NodeInfo b = MakeServer(0);
  NodeInfo c = MakeServer(1);
  NodeInfo durable;
  durable.id = NodeId::Next();
  durable.role = NodeRole::kDurableStore;
  ASSERT_TRUE(topo.AddNode(a).ok());
  ASSERT_TRUE(topo.AddNode(b).ok());
  ASSERT_TRUE(topo.AddNode(c).ok());
  ASSERT_TRUE(topo.AddNode(durable).ok());

  constexpr int64_t kBytes = 16 * 1024 * 1024;
  int64_t local = topo.TransferNanos(a.id, a.id, kBytes);
  int64_t rack = topo.TransferNanos(a.id, b.id, kBytes);
  int64_t cross = topo.TransferNanos(a.id, c.id, kBytes);
  int64_t to_durable = topo.TransferNanos(a.id, durable.id, kBytes);
  EXPECT_LT(local, rack);
  EXPECT_LT(rack, cross);
  EXPECT_LT(cross, to_durable);
}

TEST(TopologyTest, SetParamsOverridesDefaults) {
  Topology topo;
  topo.SetParams(LinkClass::kIntraRack, {1000, 1e9});
  LinkParams p = topo.ParamsFor(LinkClass::kIntraRack);
  EXPECT_EQ(p.latency_ns, 1000);
  EXPECT_DOUBLE_EQ(p.bandwidth_bytes_per_sec, 1e9);
}

TEST(TopologyTest, ControlNanosIsLatencyOnly) {
  Topology topo;
  NodeInfo a = MakeServer(0);
  NodeInfo b = MakeServer(0);
  ASSERT_TRUE(topo.AddNode(a).ok());
  ASSERT_TRUE(topo.AddNode(b).ok());
  EXPECT_EQ(topo.ControlNanos(a.id, b.id),
            DefaultLinkParams(LinkClass::kIntraRack).latency_ns);
}

TEST(TopologyTest, NodesWithRoleFilters) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode(MakeServer(0)).ok());
  ASSERT_TRUE(topo.AddNode(MakeServer(0)).ok());
  NodeInfo blade;
  blade.id = NodeId::Next();
  blade.role = NodeRole::kMemoryBlade;
  ASSERT_TRUE(topo.AddNode(blade).ok());
  EXPECT_EQ(topo.NodesWithRole(NodeRole::kServer).size(), 2u);
  EXPECT_EQ(topo.NodesWithRole(NodeRole::kMemoryBlade).size(), 1u);
  EXPECT_EQ(topo.AllNodes().size(), 3u);
}

}  // namespace
}  // namespace skadi
