#include "src/hw/cost_model.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

constexpr int64_t kMiB = 1024 * 1024;

TEST(CostModelTest, GpuWinsMatmulAtScale) {
  DeviceSpec cpu = MakeCpuDevice("c");
  DeviceSpec gpu = MakeGpuDevice("g");
  EXPECT_TRUE(CostModel::Prefer(gpu, cpu, OpClass::kMatmul, 64 * kMiB));
}

TEST(CostModelTest, CpuWinsTinyOpsDueToLaunchOverhead) {
  DeviceSpec cpu = MakeCpuDevice("c");
  DeviceSpec gpu = MakeGpuDevice("g");
  // 1 KiB elementwise op: GPU's 50us kernel launch dominates.
  EXPECT_TRUE(CostModel::Prefer(cpu, gpu, OpClass::kElementwise, 1024));
}

TEST(CostModelTest, FpgaWinsStreamingFilter) {
  DeviceSpec fpga = MakeFpgaDevice("f");
  DeviceSpec cpu = MakeCpuDevice("c");
  EXPECT_TRUE(CostModel::Prefer(fpga, cpu, OpClass::kFilter, 64 * kMiB));
}

TEST(CostModelTest, DpuPoorAtCompute) {
  DeviceSpec dpu = MakeDpuDevice("d");
  DeviceSpec cpu = MakeCpuDevice("c");
  EXPECT_TRUE(CostModel::Prefer(cpu, dpu, OpClass::kAggregate, 16 * kMiB));
}

TEST(CostModelTest, MemoryBladeNeverSelected) {
  DeviceSpec blade = MakeMemoryBladeDevice("m", 1024 * kMiB);
  DeviceSpec dpu = MakeDpuDevice("d");
  EXPECT_TRUE(CostModel::Prefer(dpu, blade, OpClass::kGeneric, kMiB));
  EXPECT_GT(CostModel::EstimateNanos(blade, OpClass::kGeneric, kMiB),
            int64_t{1} << 50);
}

TEST(CostModelTest, EstimateIncludesLaunchOverhead) {
  DeviceSpec gpu = MakeGpuDevice("g");
  EXPECT_GE(CostModel::EstimateNanos(gpu, OpClass::kMatmul, 0), gpu.launch_overhead_ns);
}

TEST(CostModelTest, EstimateMonotonicInBytes) {
  DeviceSpec cpu = MakeCpuDevice("c");
  int64_t prev = 0;
  for (int64_t bytes : {0L, 1024L, kMiB, 64 * kMiB, 1024 * kMiB}) {
    int64_t est = CostModel::EstimateNanos(cpu, OpClass::kScan, bytes);
    EXPECT_GE(est, prev);
    prev = est;
  }
}

TEST(CostModelTest, NegativeBytesTreatedAsZero) {
  DeviceSpec cpu = MakeCpuDevice("c");
  EXPECT_EQ(CostModel::EstimateNanos(cpu, OpClass::kScan, -100),
            CostModel::EstimateNanos(cpu, OpClass::kScan, 0));
}

// Property sweep: every compute device kind gives a positive finite estimate
// for every op class.
class CostModelSweep : public ::testing::TestWithParam<std::tuple<DeviceKind, OpClass>> {};

TEST_P(CostModelSweep, PositiveFiniteEstimates) {
  auto [kind, op_class] = GetParam();
  DeviceSpec spec;
  switch (kind) {
    case DeviceKind::kCpu:
      spec = MakeCpuDevice("c");
      break;
    case DeviceKind::kGpu:
      spec = MakeGpuDevice("g");
      break;
    case DeviceKind::kFpga:
      spec = MakeFpgaDevice("f");
      break;
    case DeviceKind::kDpu:
      spec = MakeDpuDevice("d");
      break;
    case DeviceKind::kMemoryBlade:
      GTEST_SKIP();
  }
  int64_t est = CostModel::EstimateNanos(spec, op_class, kMiB);
  EXPECT_GT(est, 0);
  EXPECT_LT(est, int64_t{1} << 40);  // < ~18 minutes for 1 MiB: sane
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllOps, CostModelSweep,
    ::testing::Combine(
        ::testing::Values(DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kFpga,
                          DeviceKind::kDpu),
        ::testing::Values(OpClass::kScan, OpClass::kFilter, OpClass::kProject,
                          OpClass::kJoin, OpClass::kAggregate, OpClass::kSort,
                          OpClass::kShuffleWrite, OpClass::kMatmul,
                          OpClass::kElementwise, OpClass::kReduce,
                          OpClass::kGraphStep, OpClass::kGeneric)));

}  // namespace
}  // namespace skadi
