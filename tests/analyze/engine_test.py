#!/usr/bin/env python3
"""Unit tests for the skadi-analyzer fallback engine (lexer + scope model).

Covers the C++ constructs that break naive regex tooling: raw strings,
templates, constructor init lists, lambdas, preprocessor continuations, and
the MutexLock Unlock()/Lock() toggling that the lock-blocking rule depends
on. Registered as the `analyze_engine_test` ctest test.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "tools", "analyze"))

import cpp_lexer
import cpp_model


def toks(text):
    tokens, _, _, _ = cpp_lexer.lex(text)
    return [t.text for t in tokens]


def model(text):
    return cpp_model.FileModel("<test>", text)


class LexerTest(unittest.TestCase):
    def test_basic_stream_and_maximal_munch(self):
        self.assertEqual(toks("a->b <<= c::d;"),
                         ["a", "->", "b", "<<=", "c", "::", "d", ";"])

    def test_comments_are_dropped(self):
        self.assertEqual(toks("a /* x; y */ b // tail\n c"), ["a", "b", "c"])

    def test_block_comment_line_counting(self):
        tokens, _, _, _ = cpp_lexer.lex("/* one\ntwo\nthree */ x")
        self.assertEqual(tokens[0].line, 3)

    def test_raw_string_with_parens_and_quotes(self):
        text = 'auto s = R"delim(no "close"; ) here)delim"; next'
        self.assertIn("next", toks(text))
        tokens, _, _, _ = cpp_lexer.lex(text)
        raws = [t for t in tokens if t.kind == "string"]
        self.assertEqual(len(raws), 1)
        self.assertIn('no "close"', raws[0].text)

    def test_prefixed_literals(self):
        tokens, _, _, _ = cpp_lexer.lex("u8\"x\" L'c' U\"y\" usual")
        kinds = [t.kind for t in tokens]
        self.assertEqual(kinds, ["string", "char", "string", "ident"])
        self.assertEqual(tokens[3].text, "usual")

    def test_escaped_quote_in_string(self):
        self.assertEqual(toks(r'f("a\"b", x)'),
                         ["f", "(", r'"a\"b"', ",", "x", ")"])

    def test_preprocessor_with_continuation(self):
        text = "#define M(a) \\\n  ((a) + 1)\nint x;"
        self.assertEqual(toks(text), ["int", "x", ";"])

    def test_hash_mid_line_is_not_a_directive(self):
        # Only a line-leading # swallows the line.
        tokens, _, _, _ = cpp_lexer.lex("x # y")
        self.assertEqual([t.text for t in tokens], ["x", "#", "y"])

    def test_allow_map(self):
        text = ("int a;\n"
                "// analyze:allow view-escape (fixture)\n"
                "int b;  // analyze:allow pin-balance (same line)\n")
        _, allow, _, _ = cpp_lexer.lex(text)
        self.assertEqual(allow[2], {"view-escape"})
        self.assertEqual(allow[3], {"pin-balance"})


class FunctionDiscoveryTest(unittest.TestCase):
    def names(self, text):
        return [f.qual_name for f in model(text).functions]

    def test_free_function_and_method(self):
        text = """
        int Add(int a, int b) { return a + b; }
        class C {
         public:
          void Run() const { count_++; }
        };
        """
        self.assertEqual(self.names(text), ["Add", "Run"])

    def test_out_of_line_qualified_definition(self):
        text = "Status CachingLayer::Get(ObjectId id) { return Status::Ok(); }"
        m = model(text)
        self.assertEqual(m.functions[0].qual_name, "CachingLayer::Get")
        self.assertEqual(m.functions[0].name, "Get")
        self.assertIn("Status", m.functions[0].return_text)

    def test_constructor_with_init_list(self):
        text = """
        Raylet::Raylet(Node n, Callbacks cb)
            : node_(std::move(n)), callbacks_{std::move(cb)}, pool_(4) {
          Start();
        }
        """
        m = model(text)
        self.assertEqual([f.qual_name for f in m.functions],
                         ["Raylet::Raylet"])

    def test_control_flow_is_not_a_function(self):
        text = """
        void F(int x) {
          if (x) { G(); }
          while (x) { H(); }
          for (int i = 0; i < x; ++i) { I(); }
          switch (x) { default: break; }
        }
        """
        self.assertEqual(self.names(text), ["F"])

    def test_declarations_are_not_definitions(self):
        text = "int Declared(int);\nclass C { void AlsoDeclared(int) const; };"
        self.assertEqual(self.names(text), [])

    def test_template_function(self):
        text = "template <typename T>\nT Max(T a, T b) { return a < b ? b : a; }"
        self.assertEqual(self.names(text), ["Max"])

    def test_gtest_macro_body_is_analyzed(self):
        text = 'TEST_F(StressTest, Kill) { EXPECT_TRUE(Run().ok()); }'
        self.assertEqual(self.names(text), ["TEST_F"])

    def test_local_struct_method_stays_in_enclosing_function(self):
        text = """
        void Outer() {
          struct Guard {
            ~Guard() { cleanup(); }
          };
          Guard g;
        }
        """
        self.assertEqual(self.names(text), ["Outer"])

    def test_trailing_return_type(self):
        text = "auto Mk() -> std::vector<int> { return {}; }"
        self.assertEqual(self.names(text), ["Mk"])


class ScopeModelTest(unittest.TestCase):
    def test_locals_with_templated_types(self):
        text = """
        void F(const std::vector<Buffer>& args) {
          std::unordered_map<ObjectId, size_t> sizes;
          Status st = Put(args);
          auto it = sizes.begin();
        }
        """
        fn = model(text).functions[0]
        by_name = {d.name: d for d in fn.locals}
        self.assertIn("args", by_name)       # parameter, depth 0
        self.assertEqual(by_name["args"].depth, 0)
        self.assertEqual(by_name["sizes"].depth, 1)
        self.assertEqual(by_name["st"].type_text, "Status")
        self.assertEqual(by_name["it"].type_text, "auto")

    def test_lambda_depth(self):
        text = """
        void F() {
          int a = 1;
          auto cb = [&](int x) {
            return x + a;
          };
          int b = 2;
        }
        """
        fn = model(text).functions[0]
        m = fn.file
        inner_return = next(i for i in fn.body_indices()
                            if m.tokens[i].text == "return")
        self.assertEqual(fn.lambda_depth_at(inner_return), 1)
        b_decl = next(d for d in fn.locals if d.name == "b")
        self.assertEqual(fn.lambda_depth_at(b_decl.index), 0)

    def test_lock_region_with_unlock_lock_toggle(self):
        text = """
        void F() {
          MutexLock lock(mu_);
          Touch();
          lock.Unlock();
          SlowIo();
          lock.Lock();
          Commit();
        }
        """
        fn = model(text).functions[0]
        m = fn.file
        idx = {m.tokens[i].text: i for i in fn.body_indices()}
        self.assertTrue(fn.active_locks(idx["Touch"]))
        self.assertFalse(fn.active_locks(idx["SlowIo"]))
        self.assertTrue(fn.active_locks(idx["Commit"]))

    def test_lock_scoped_to_inner_block(self):
        text = """
        void F() {
          {
            MutexLock lock(mu_);
            Inside();
          }
          Outside();
        }
        """
        fn = model(text).functions[0]
        m = fn.file
        idx = {m.tokens[i].text: i for i in fn.body_indices()}
        self.assertTrue(fn.active_locks(idx["Inside"]))
        self.assertFalse(fn.active_locks(idx["Outside"]))

    def test_receiver_chains(self):
        text = """
        void F() {
          cluster_->cache().Put(id, data, home);
          store->Get(id);
          Bare(id);
        }
        """
        fn = model(text).functions[0]
        by_callee = {c.callee: c for c in fn.calls}
        self.assertIn("cache", by_callee["Put"].receiver)
        self.assertEqual(by_callee["Get"].receiver, "store ->")
        self.assertEqual(by_callee["Bare"].receiver, "")

    def test_guarded_mutex_collection(self):
        text = """
        class C {
          Mutex mu_;
          int x_ GUARDED_BY(mu_);
          void F() REQUIRES(other_mu_);
        };
        """
        m = model(text)
        self.assertIn("mu_", m.guarded_mutexes)
        self.assertIn("other_mu_", m.guarded_mutexes)


class AsyncModelTest(unittest.TestCase):
    """Lambda capture lists, pseudo-functions, dtor flags, class bases, and
    `// analyze:lifetime` — the facts the async-lifetime passes consume."""

    def test_capture_kinds(self):
        text = """
        void F() {
          int x = 0;
          auto self = Keep();
          Run([this, *this, self, &x, n = x + 1, &alias = x] {});
        }
        """
        fn = model(text).functions[0]
        caps = {c["name"]: c["kind"] for c in fn.lambdas[0].captures
                if c.get("name") is not None}
        kinds = [c["kind"] for c in fn.lambdas[0].captures]
        self.assertIn("this", kinds)
        self.assertIn("star_this", kinds)
        self.assertEqual(caps["self"], "value")
        self.assertEqual(caps["x"], "ref")
        self.assertEqual(caps["n"], "init_value")
        self.assertEqual(caps["alias"], "init_ref")

    def test_capture_defaults(self):
        text = """
        void F() {
          Run([&] { Go(); });
          Run([=] { Go(); });
        }
        """
        fn = model(text).functions[0]
        self.assertEqual(fn.lambdas[0].captures[0]["kind"], "ref_default")
        self.assertEqual(fn.lambdas[1].captures[0]["kind"], "value_default")

    def test_lambda_pseudo_functions_nested(self):
        text = """
        class Widget {
         public:
          void Go() {
            Post([this] {
              Post([this] { Tick(); });
            });
          }
        };
        """
        m = model(text)
        displays = [f.display_name() for f in m.lambda_functions]
        self.assertEqual(len(displays), 2)
        self.assertTrue(displays[0].startswith("Widget::Go::<lambda:"))
        # The nested lambda's parent is the outer pseudo-function.
        inner = next(f for f in m.lambda_functions
                     if f.parent.is_lambda)
        self.assertIn("<lambda:", inner.parent.display_name())
        for f in m.lambda_functions:
            self.assertEqual(f.class_name, "Widget")

    def test_dtor_flag_in_class_and_out_of_line(self):
        text = """
        class Raylet {
         public:
          ~Raylet();
          void Shutdown() {}
        };
        Raylet::~Raylet() { Shutdown(); }
        """
        m = model(text)
        dtors = [f for f in m.functions if f.is_dtor]
        self.assertEqual(len(dtors), 1)
        self.assertEqual(dtors[0].display_name(), "Raylet::Raylet")
        self.assertEqual([c.callee for c in dtors[0].calls], ["Shutdown"])

    def test_class_bases_collected(self):
        text = """
        class Session : public std::enable_shared_from_this<Session> {
         public:
          void Go() {}
        };
        """
        m = model(text)
        self.assertIn("enable_shared_from_this", m.class_bases["Session"])

    def test_lifetime_annotation_map(self):
        text = """
        void F() {
          // analyze:lifetime frame outlives continuation: BlockOn below
          Post([&] {});
        }
        """
        m = model(text)
        self.assertEqual(
            m.lifetime_reason(3),
            "frame outlives continuation: BlockOn below")
        # Line-above lookup: the annotation covers the lambda's line too.
        self.assertEqual(
            m.lifetime_reason(4),
            "frame outlives continuation: BlockOn below")


if __name__ == "__main__":
    unittest.main()
