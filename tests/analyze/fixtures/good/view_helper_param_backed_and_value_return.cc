// Analyzer fixture (not compiled): two near-misses of the helper-mediated
// escape. Passing a *parameter* to a view-returning helper is fine (the
// caller owns the storage), and a helper that returns by value is fine no
// matter what it is given.
#include "src/common/mutex.h"

namespace skadi {

std::string_view HeadView(const std::string& s) {
  return std::string_view(s).substr(0, 8);
}

std::string MakeCopy(const std::string& s) {
  return s;
}

class Renderer {
 public:
  // The view points into the caller's storage, which outlives this frame.
  std::string_view Title(const std::string& doc) {
    return HeadView(doc);
  }

  // The helper copies; the local dying is irrelevant.
  std::string RenderedCopy() {
    std::string tmp = RenderBody();
    return MakeCopy(tmp);
  }

 private:
  std::string RenderBody();
};

}  // namespace skadi
