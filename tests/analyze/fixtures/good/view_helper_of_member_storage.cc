// Analyzer fixture (not compiled): the view-returning helper is applied to
// member storage, which lives as long as the object — returning or caching
// that view is legitimate.
#include "src/common/mutex.h"

namespace skadi {

std::string_view FirstLine(const std::string& text) {
  return std::string_view(text).substr(0, text.find('\n'));
}

class LogIndex {
 public:
  std::string_view Banner() {
    return FirstLine(header_);  // member-backed: storage outlives the frame
  }

  void CacheBanner() {
    banner_ = FirstLine(header_);
  }

 private:
  std::string header_;
  std::string_view banner_;
};

}  // namespace skadi
