// Analyzer fixture (not compiled): two near-misses — a pure-compute callee
// invoked under a lock (no blocking reachable), and a blocking function
// referenced only from a lambda handed to an executor (deferred: it runs
// on another stack, after the lock is gone).
#include "src/common/mutex.h"

namespace skadi {

class Aggregator {
 public:
  void Update(int delta) {
    MutexLock lock(mu_);
    Recount(delta);  // resolved callee, but nothing in it blocks
    // analyze:lifetime Aggregator joins executor_ before destruction
    executor_->Post([this] { WaitIdle(); });  // deferred body: not "under mu_"
  }

 private:
  void Recount(int delta) {
    total_ += delta;
    if (total_ < 0) {
      total_ = 0;
    }
  }

  void WaitIdle() {
    MutexLock lock(idle_mu_);
    while (!idle_) {
      idle_cv_.Wait(lock);
    }
  }

  Mutex mu_;
  Mutex idle_mu_;
  CondVar idle_cv_;
  int total_ GUARDED_BY(mu_) = 0;
  bool idle_ GUARDED_BY(idle_mu_) = false;
  Executor* executor_;
};

}  // namespace skadi
