// Analyzer fixture (not compiled): a by-reference capture into a deferred
// sink that the author has vouched for — the frame provably outlives the
// continuation because BlockOn drains the reactor before returning. The
// `// analyze:lifetime <reason>` annotation (guarantee 3) silences the
// rule; the reason is mandatory (tools/lint.py checks it is non-empty).
#include "src/common/event.h"
#include "src/net/reactor.h"

namespace skadi {

class Collector {
 public:
  int Sum() {
    int total = 0;
    Event done;
    // analyze:lifetime frame outlives the continuation: BlockOn(done) below
    reactor_->Post([&total, &done] {
      total += 1;
      done.Set();
    });
    reactor_->BlockOn(done);
    return total;
  }

 private:
  Reactor* reactor_;
};

}  // namespace skadi
