// Analyzer fixture (not compiled): guarantee 1 — a strong guard rides in
// the capture list. `self` keeps the object alive for as long as the
// continuation exists, so the raw `this` alongside it is safe. No async
// finding.
#include <memory>

#include "src/net/reactor.h"

namespace skadi {

class Session : public std::enable_shared_from_this<Session> {
 public:
  void Renew() {
    auto self = shared_from_this();
    reactor_->ScheduleAfter(1'000'000, [this, self] { leases_ += 1; });
  }

 private:
  Reactor* reactor_;
  int leases_ = 0;
};

}  // namespace skadi
