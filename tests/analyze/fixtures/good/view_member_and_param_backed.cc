// Analyzer fixture (not compiled): the *correct* view idioms — member-backed
// accessors, parameter-backed views, and owner-threaded Buffer::Wrap. None
// of these may be flagged.
#include "src/common/array_view.h"
#include "src/common/buffer.h"

namespace skadi {

class ColumnLike {
 public:
  ArrayView<int64_t> ints() const { return ints_; }
  std::string_view name() const { return name_; }
  ArrayView<int64_t> Tail(size_t n) const {
    return ints_.subview(ints_.size() - n, n);
  }

 private:
  ArrayView<int64_t> ints_;
  std::string name_;
};

// The caller owns the vector; a view over a parameter is their contract.
ArrayView<double> ViewOfParam(const std::vector<double>& v) {
  return ArrayView<double>(v.data(), v.size());
}

// Owner threaded through the view: the refcount travels with the Buffer.
Buffer WrapShared(const std::shared_ptr<std::vector<uint8_t>>& owner) {
  return Buffer::Wrap(owner, owner->data(), owner->size());
}

// Slicing a parameter keeps the parent's owner; returning it is fine.
Buffer Mid(const Buffer& whole) { return whole.Slice(4, 8); }

}  // namespace skadi
