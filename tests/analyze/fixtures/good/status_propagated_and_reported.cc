// Analyzer fixture (not compiled): every captured Status is propagated,
// passed on, or reported with its detail. None of this may be flagged.
#include "src/common/status.h"

namespace skadi {

Status StoreTwice(LocalObjectStore& a, LocalObjectStore& b, ObjectId id,
                  const Buffer& data) {
  Status first = a.Put(id, data);
  if (!first.ok()) {
    return first;  // propagated
  }
  Status second = b.Put(id, data);
  SKADI_RETURN_IF_ERROR(second);  // passed as an argument
  return Status::Ok();
}

void LogFailure(CachingLayer& cache, ObjectId id) {
  Status st = cache.Delete(id);
  if (!st.ok()) {
    SKADI_LOG(kWarn) << "delete of " << id << ": " << st.ToString();  // reported
  }
}

}  // namespace skadi
