// Analyzer fixture (not compiled): the reactor-era idiom — continuation
// state lives in a shared_ptr captured by value, so the continuation owns
// what it touches no matter when it runs. No async finding.
#include <memory>

#include "src/net/reactor.h"

namespace skadi {

struct FetchState {
  int retries = 0;
  bool done = false;
};

class Fetcher {
 public:
  void Fetch() {
    auto state = std::make_shared<FetchState>();
    reactor_->Post([state] { state->retries += 1; });
    reactor_->ScheduleAfter(1'000'000, [state] { state->done = true; });
  }

 private:
  Reactor* reactor_;
};

}  // namespace skadi
