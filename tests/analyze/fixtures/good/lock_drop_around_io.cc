// Analyzer fixture (not compiled): the caching layer's drop-the-lock-
// around-IO idiom and single-lock CondVar waits. The analyzer must track
// Unlock()/Lock() toggling — none of this may be flagged.
#include "src/common/mutex.h"

namespace skadi {

class DirectoryLike {
 public:
  Status Rebalance(ObjectId id, NodeId to) {
    MutexLock lock(mu_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      return Status::NotFound("no entry");
    }
    Entry entry = it->second;
    lock.Unlock();  // IO happens without the directory lock
    Status moved = dst_store_->Put(id, entry.data);
    if (!moved.ok()) {
      return moved;
    }
    lock.Lock();  // reacquired for the directory update
    directory_[id].locations.insert(to);
    return Status::Ok();
  }

  void WaitDone() {
    MutexLock lock(mu_);
    while (!done_) {
      cv_.Wait(lock);  // releases its own (and only) lock
    }
  }

  // Scoped lock in an inner block: dead before the store call.
  Status Snapshot(ObjectId id) {
    size_t n = 0;
    {
      MutexLock lock(mu_);
      n = directory_.size();
    }
    return dst_store_->Put(id, MakeSizeRecord(n));
  }

 private:
  Mutex mu_;
  std::unordered_map<ObjectId, Entry> directory_ GUARDED_BY(mu_);
  CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  LocalObjectStore* dst_store_;
};

}  // namespace skadi
