// Analyzer fixture (not compiled): the Raylet::RunTask PinGuard idiom — a
// local RAII struct unpins on every exit path, so early returns are safe.
#include "src/runtime/raylet.h"

namespace skadi {

void Execute(const TaskSpec& spec, NodeId node) {
  struct PinGuard {
    Callbacks* cb;
    std::vector<ObjectRef> pinned;
    NodeId at;
    ~PinGuard() {
      for (const ObjectRef& ref : pinned) {
        cb->unpin_arg(ref, at);
      }
    }
  };
  PinGuard guard{&callbacks_, {}, node};
  for (const TaskArg& arg : spec.args) {
    if (arg.is_ref() && callbacks_.pin_arg(arg.ref(), node)) {
      guard.pinned.push_back(arg.ref());
    }
  }
  Run(spec);
}

// Textually balanced pin/unpin with no return in between is also fine.
void TouchOnce(LocalObjectStore& store, ObjectId id) {
  Status pinned = store.Pin(id);
  if (pinned.ok()) {
    Consume(store, id);
    (void)store.Unpin(id);  // unpin failure on shutdown is benign
  }
  Report(pinned);
}

}  // namespace skadi
