// Analyzer fixture (not compiled): a deliberate swallow carrying the
// `// analyze:allow <rule> (<reason>)` escape hatch must not be reported.
#include "src/common/status.h"

namespace skadi {

Status BestEffortFlush(CachingLayer& cache, ObjectId id) {
  // analyze:allow status-propagation (flush is best-effort by design)
  Status st = cache.Delete(id);
  if (!st.ok()) {
    // swallowed deliberately: a missing entry is the desired end state
  }
  return Status::Ok();
}

}  // namespace skadi
