// Analyzer fixture (not compiled): guarantee 2 — the Raylet pattern. The
// class owns the reactor by value and its destructor calls Shutdown, which
// drains queued continuations before any member is destroyed; `this` in a
// continuation posted to that reactor cannot dangle. No async finding.
#include "src/net/reactor.h"

namespace skadi {

class WorkerPool {
 public:
  ~WorkerPool() { workers_.Shutdown(); }

  void Enqueue() {
    workers_.Post([this] { executed_ += 1; });
  }

 private:
  Reactor workers_;  // owned by value; drained in the destructor
  long executed_ = 0;
};

}  // namespace skadi
