// Analyzer fixture (not compiled): near-miss of the helper-waits case —
// the caller drops its lock around the blocking helper (the caching
// layer's drop-the-lock idiom), so the interprocedural pass must stay
// quiet even though the callee is genuinely blocking.
#include "src/common/mutex.h"

namespace skadi {

class ShardIndexGood {
 public:
  void Rebuild() {
    MutexLock lock(index_mu_);
    generation_++;
    lock.Unlock();  // blocking helper runs without the index lock
    DrainPending();
    lock.Lock();
    rebuilt_ = true;
  }

 private:
  void DrainPending() {
    MutexLock qlock(queue_mu_);
    while (!queue_empty_) {
      queue_cv_.Wait(qlock);
    }
  }

  Mutex index_mu_;
  Mutex queue_mu_;
  CondVar queue_cv_;
  int generation_ GUARDED_BY(index_mu_) = 0;
  bool rebuilt_ GUARDED_BY(index_mu_) = false;
  bool queue_empty_ GUARDED_BY(queue_mu_) = true;
};

}  // namespace skadi
