// Analyzer fixture (not compiled): near-miss of AB/BA — one method uses
// a then b, the other b then a, but the first releases a before taking b
// (Unlock()/Lock() toggling). Locks are never held together in conflicting
// order, so there is no cycle.
#include "src/common/mutex.h"

namespace skadi {

class HandoffLedger {
 public:
  void Forward() {
    MutexLock a(ingest_mu_);
    staged_++;
    a.Unlock();  // ingest lock dropped before the commit lock
    MutexLock b(commit_mu_);
    committed_++;
  }

  void Backfill() {
    MutexLock b(commit_mu_);
    MutexLock a(ingest_mu_);
    staged_++;
    committed_++;
  }

 private:
  Mutex ingest_mu_;
  Mutex commit_mu_;
  int staged_ GUARDED_BY(ingest_mu_) = 0;
  int committed_ GUARDED_BY(commit_mu_) = 0;
};

}  // namespace skadi
