// Analyzer fixture (not compiled): near-miss of the AB/BA fixtures — both
// locks nest in the same order everywhere, directly in one method and
// through a callee in another. A consistent order builds edges but no
// cycle; the pass must stay quiet.
#include "src/common/mutex.h"

namespace skadi {

class ConsistentDirectory {
 public:
  void Promote(ObjectId id) {
    MutexLock index(index_mu_);
    MutexLock stats(stats_mu_);
    hot_count_++;
    promoted_.insert(id);
  }

  void Refresh(ObjectId id) {
    MutexLock index(index_mu_);
    promoted_.insert(id);
    BumpStats();  // acquires stats_mu_ under index_mu_: same order
  }

 private:
  void BumpStats() {
    MutexLock stats(stats_mu_);
    hot_count_++;
  }

  Mutex index_mu_;
  Mutex stats_mu_;
  std::set<ObjectId> promoted_ GUARDED_BY(index_mu_);
  int hot_count_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace skadi
