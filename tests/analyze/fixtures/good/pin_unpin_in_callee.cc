// Analyzer fixture (not compiled): the exact shape the per-function rule
// used to false-positive on — the pin is released inside a helper. The
// interprocedural pass resolves Finish() and credits its unpin to the
// caller's balance.
#include "src/common/mutex.h"

namespace skadi {

class BalancedRunner {
 public:
  Status Execute(ObjectId id) {
    store_->Pin(id);  // lint:allow discarded-status (fixture)
    Status st = RunBody(id);
    Finish(id);  // unpins inside
    return st;
  }

 private:
  Status RunBody(ObjectId id) {
    bytes_seen_ += static_cast<int64_t>(id.Hash() & 0xff);
    return Status::Ok();
  }

  void Finish(ObjectId id) {
    store_->Unpin(id);  // lint:allow discarded-status (fixture)
    completed_++;
  }

  LocalObjectStore* store_;
  int64_t bytes_seen_ = 0;
  int completed_ = 0;
};

}  // namespace skadi
