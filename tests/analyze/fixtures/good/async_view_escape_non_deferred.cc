// Analyzer fixture (not compiled): a view captured by a lambda is fine
// when the callee runs it synchronously — ForEachRow calls back before
// returning, while the chunk's frame is alive. Only the deferred boundary
// (Post/ScheduleAfter/OnSet/...) makes a view capture dangerous. No async
// finding.
#include "src/common/buffer.h"

namespace skadi {

class RowScanner {
 public:
  int CountNonZero() {
    ArrayView<int> rows = Rows();
    int hits = 0;
    // Synchronous callback: ForEachRow is not a deferred sink.
    ForEachRow(rows, [rows, &hits](int i) {
      if (rows[i] != 0) {
        hits += 1;
      }
    });
    return hits;
  }

 private:
  ArrayView<int> Rows();
  template <typename Fn>
  void ForEachRow(ArrayView<int> rows, Fn fn);
};

}  // namespace skadi
