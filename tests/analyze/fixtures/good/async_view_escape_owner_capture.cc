// Analyzer fixture (not compiled): the fix for a view crossing the async
// boundary — capture the owning object by value (move the string, copy the
// Buffer handle) and make the view inside the continuation, where the owner
// is guaranteed alive. No async finding.
#include <string>
#include <utility>

#include "src/net/reactor.h"

namespace skadi {

class Publisher {
 public:
  void Publish() {
    std::string payload = Render();
    reactor_->Post([payload] { Emit(payload); });  // owner, not a view
  }

 private:
  std::string Render();
  static void Emit(const std::string& p);

  Reactor* reactor_;
};

}  // namespace skadi
