// Analyzer fixture (not compiled): the unpin is two calls away —
// Execute -> Cleanup -> ReleaseAll. The provides-unpin fixpoint must
// propagate through intermediate frames, not just direct callees.
#include "src/common/mutex.h"

namespace skadi {

class DeepRunner {
 public:
  void Execute(ObjectId id) {
    store_->Pin(id);  // lint:allow discarded-status (fixture)
    Consume(id);
    Cleanup(id);  // transitively unpins via ReleaseAll
  }

 private:
  void Consume(ObjectId id) {
    bytes_seen_ += static_cast<int64_t>(id.Hash() & 0xff);
  }

  void Cleanup(ObjectId id) {
    trace_.push_back(id);
    ReleaseAll(id);
  }

  void ReleaseAll(ObjectId id) {
    store_->Unpin(id);  // lint:allow discarded-status (fixture)
  }

  LocalObjectStore* store_;
  std::vector<ObjectId> trace_;
  int64_t bytes_seen_ = 0;
};

}  // namespace skadi
