// Analyzer fixture (not compiled): the callee's Status is captured and then
// ignored entirely; a failed migration is silently treated as success.
#include "src/cache/caching_layer.h"

namespace skadi {

Status FlushAll(CachingLayer& cache, const std::vector<ObjectId>& ids,
                NodeId home) {
  for (const ObjectId& id : ids) {
    Status st = cache.Migrate(id, home);  // never looked at again
  }
  return Status::Ok();
}

}  // namespace skadi
