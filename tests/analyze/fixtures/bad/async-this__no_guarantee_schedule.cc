// Analyzer fixture (not compiled): the class owns its reactor by value —
// but the owned-reactor guarantee also requires a destructor that calls
// Shutdown, so queued continuations drain before the members they touch are
// destroyed. This class has no destructor: member destruction order still
// races the in-flight tick. async-this must flag it.
#include "src/net/reactor.h"

namespace skadi {

class RetryQueue {
 public:
  void Requeue() {
    workers_.ScheduleAfter(5'000'000, [this] { depth_ += 1; });
  }

 private:
  Reactor workers_;  // owned, but nobody drains it at destruction
  int depth_ = 0;
};

}  // namespace skadi
