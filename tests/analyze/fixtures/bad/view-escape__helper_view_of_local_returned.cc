// Analyzer fixture (not compiled): the view constructor is hidden inside
// a helper, so the per-function rule sees only `return HeadBytes(scratch)`.
// The interprocedural pass knows HeadBytes returns a view into its
// parameter, and `scratch` dies with the frame.
#include "src/common/mutex.h"

namespace skadi {

std::string_view HeadBytes(const Buffer& b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), 16);
}

class FrameCodec {
 public:
  std::string_view FrameHeader() {
    Buffer scratch = AssembleFrame();
    return HeadBytes(scratch);  // view into a dead frame
  }

 private:
  Buffer AssembleFrame();
};

}  // namespace skadi
