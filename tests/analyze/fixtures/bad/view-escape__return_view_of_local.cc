// Analyzer fixture (not compiled): an ArrayView over a local vector returned
// to the caller — the canonical dangling-view bug the zero-copy data plane
// invites.
#include "src/common/array_view.h"

namespace skadi {

ArrayView<int64_t> Squares(int n) {
  std::vector<int64_t> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<int64_t>(i) * i);
  }
  return ArrayView<int64_t>(out.data(), out.size());  // storage dies here
}

}  // namespace skadi
