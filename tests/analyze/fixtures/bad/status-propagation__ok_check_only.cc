// Analyzer fixture (not compiled): the Status is .ok()-checked but the error
// detail is dropped on the floor — the caller gets a made-up status instead.
#include "src/ownership/ownership_table.h"

namespace skadi {

Status Reconcile(OwnershipTable& table, const std::vector<ObjectId>& lost) {
  int failures = 0;
  for (const ObjectId& id : lost) {
    Status marked = table.MarkLost(id);
    if (!marked.ok()) {  // which error? nobody will ever know
      ++failures;
    }
  }
  if (failures > 0) {
    return Status::Unavailable("some marks failed");
  }
  return Status::Ok();
}

}  // namespace skadi
