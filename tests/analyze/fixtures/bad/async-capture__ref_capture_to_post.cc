// Analyzer fixture (not compiled): the continuation is queued on the
// reactor and runs after Register() has returned — `total` lives on
// Register()'s frame, so the by-reference capture is a use-after-return.
// async-capture must flag the lambda.
#include "src/net/reactor.h"

namespace skadi {

class Admission {
 public:
  void Register(int n) {
    int total = 0;
    reactor_->Post([&total] { total += 1; });  // frame-local by reference
    last_ = total;
  }

 private:
  Reactor* reactor_;
  int last_ = 0;
};

}  // namespace skadi
