// Analyzer fixture (not compiled): ArrayView does not own the column chunk
// it points into; deferring it across the timer means the pinned page can
// be unpinned / evicted before the continuation runs. async-view-escape
// must flag the view capture crossing the async boundary.
#include "src/common/buffer.h"
#include "src/net/reactor.h"

namespace skadi {

class ChunkShipper {
 public:
  void Ship() {
    ArrayView<int> rows = TakeRows();
    reactor_->ScheduleAfter(1'000'000, [rows] { Send(rows); });
  }

 private:
  ArrayView<int> TakeRows();
  static void Send(ArrayView<int> rows);

  Reactor* reactor_;
};

}  // namespace skadi
