// Analyzer fixture (not compiled): "warming" an argument by pinning it and
// never unpinning — a permanent store leak dressed up as an optimization.
#include "src/objectstore/local_store.h"

namespace skadi {

bool WarmArg(const ObjectRef& ref, NodeId node) {
  LocalObjectStore* store = StoreOf(node);
  if (store == nullptr) {
    return false;
  }
  return store->Pin(ref.id).ok();  // pinned forever
}

}  // namespace skadi
