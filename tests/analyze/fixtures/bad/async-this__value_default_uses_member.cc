// Analyzer fixture (not compiled): [=] looks safe ("everything by value")
// but members are reached through an implicitly captured raw `this` — the
// copy-by-value is of the pointer, not the object. async-this must flag the
// implicit this capture, since the body touches a member and the class
// offers no lifetime guarantee.
#include "src/net/reactor.h"

namespace skadi {

class SeqStamper {
 public:
  void Stamp() {
    reactor_->Post([=] { seq_ += 1; });  // [=] captures `this`, not seq_
  }

 private:
  Reactor* reactor_;
  long seq_ = 0;
};

}  // namespace skadi
