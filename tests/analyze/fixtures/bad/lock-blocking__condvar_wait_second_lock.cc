// Analyzer fixture (not compiled): CondVar::Wait releases only the lock it
// is given; the outer lock stays held for the whole (unbounded) wait.
#include "src/common/mutex.h"

namespace skadi {

class TwoLocks {
 public:
  void Drain() {
    MutexLock outer(index_mu_);
    MutexLock inner(queue_mu_);
    while (!done_) {
      cv_.Wait(inner);  // index_mu_ held across the wait
    }
  }

 private:
  Mutex index_mu_;
  Mutex queue_mu_;
  CondVar cv_;
  bool done_ GUARDED_BY(queue_mu_) = false;
};

}  // namespace skadi
