// Analyzer fixture (not compiled): same helper-mediated escape with a
// Span over a local vector — the element storage is freed when the
// vector's frame unwinds.
#include "src/common/mutex.h"

namespace skadi {

Span<const int> Tail(const std::vector<int>& v) {
  return Span<const int>(v.data() + 1, v.size() - 1);
}

class WindowScan {
 public:
  Span<const int> LastWindow() {
    std::vector<int> window = CollectWindow();
    return Tail(window);  // span over freed vector storage
  }

 private:
  std::vector<int> CollectWindow();
};

}  // namespace skadi
