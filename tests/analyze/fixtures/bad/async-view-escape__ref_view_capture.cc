// Analyzer fixture (not compiled): doubly wrong — a view type captured by
// reference. Both the view object (frame-local) and the bytes it points at
// are gone when the continuation runs. async-view-escape must flag it.
#include "src/common/buffer.h"
#include "src/net/reactor.h"

namespace skadi {

class FrameRelay {
 public:
  void Relay() {
    Span<const char> frame = NextFrame();
    reactor_->Post([&frame] { Forward(frame); });
  }

 private:
  Span<const char> NextFrame();
  static void Forward(Span<const char> f);

  Reactor* reactor_;
};

}  // namespace skadi
