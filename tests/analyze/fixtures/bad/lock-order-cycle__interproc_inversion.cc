// Analyzer fixture (not compiled): neither class inverts its own locks;
// the cycle only exists across the call graph — Store::Evict holds
// Store::mu_ while calling into Cache (which takes Cache::mu_), and
// Cache::Flush holds Cache::mu_ while calling back into Store.
#include "src/common/mutex.h"

namespace skadi {

class Cache;
class Store;

class Store {
 public:
  void Evict(ObjectId id) {
    MutexLock lock(mu_);
    evicted_++;
    cache_->Invalidate(id);  // Cache::mu_ acquired under Store::mu_
  }

  void OnInvalidate(ObjectId id) {
    MutexLock lock(mu_);
    evicted_++;
  }

 private:
  Mutex mu_;
  int evicted_ GUARDED_BY(mu_) = 0;
  Cache* cache_;
};

class Cache {
 public:
  void Invalidate(ObjectId id) {
    MutexLock lock(mu_);
    entries_.erase(id);
  }

  void Flush(ObjectId id) {
    MutexLock lock(mu_);
    entries_.erase(id);
    store_->OnInvalidate(id);  // Store::mu_ acquired under Cache::mu_
  }

 private:
  Mutex mu_;
  std::set<ObjectId> entries_ GUARDED_BY(mu_);
  Store* store_;
};

}  // namespace skadi
