// Analyzer fixture (not compiled): a member stores the result of a helper
// that returns a view into its parameter; the backing string is a local.
// The member outlives the frame the view points into.
#include "src/common/mutex.h"

namespace skadi {

std::string_view TitleOf(const std::string& doc) {
  return std::string_view(doc).substr(0, 8);
}

class HeaderCache {
 public:
  void Refresh() {
    std::string rendered = Render();
    title_ = TitleOf(rendered);  // dangles as soon as Refresh returns
  }

 private:
  std::string Render();

  std::string_view title_;
};

}  // namespace skadi
