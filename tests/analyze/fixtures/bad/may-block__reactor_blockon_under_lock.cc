// Analyzer fixture (not compiled): BlockOn is the reactor's blocking
// boundary — a drain-loop (or parked-thread) wait. Registering the
// continuation is fine; calling the blocking shim while holding the
// directory lock stalls every other thread that needs directory_mu_ for as
// long as the event stays unset. The reactor-wait seed kind plus the
// lock-blocking interprocedural pass must flag the helper's wait under the
// caller's lock.
#include "src/common/mutex.h"
#include "src/net/reactor.h"

namespace skadi {

class DirectoryFrontend {
 public:
  void Refresh() {
    MutexLock lock(directory_mu_);
    epoch_++;
    AwaitWarmup();  // transitively reaches reactor_.BlockOn under directory_mu_
  }

 private:
  void AwaitWarmup() {
    Event warmed;
    reactor_.BlockOn(warmed);  // reactor-wait: parks or drains indefinitely
  }

  Mutex directory_mu_;
  Reactor reactor_;
  int epoch_ GUARDED_BY(directory_mu_) = 0;
};

}  // namespace skadi
