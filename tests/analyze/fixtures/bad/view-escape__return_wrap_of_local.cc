// Analyzer fixture (not compiled): Buffer::Wrap with a null owner aliasing a
// function-local vector. The Buffer escapes; the bytes die with the frame.
#include "src/common/buffer.h"

namespace skadi {

Buffer MakePayload() {
  std::vector<uint8_t> bytes(64, 0);
  FillHeader(bytes.data());
  return Buffer::Wrap(nullptr, bytes.data(), bytes.size());  // dangles
}

}  // namespace skadi
