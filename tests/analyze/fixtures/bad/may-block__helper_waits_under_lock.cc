// Analyzer fixture (not compiled): the callee's CondVar wait is fine in
// isolation (it releases its own lock), but the caller invokes it while
// holding the index lock — an unbounded wait under index_mu_ that only the
// interprocedural may-block pass can see.
#include "src/common/mutex.h"

namespace skadi {

class ShardIndex {
 public:
  void Rebuild() {
    MutexLock lock(index_mu_);
    generation_++;
    DrainPending();  // transitively blocks on queue_cv_ with index_mu_ held
  }

 private:
  void DrainPending() {
    MutexLock qlock(queue_mu_);
    while (!queue_empty_) {
      queue_cv_.Wait(qlock);  // releases only queue_mu_
    }
  }

  Mutex index_mu_;
  Mutex queue_mu_;
  CondVar queue_cv_;
  int generation_ GUARDED_BY(index_mu_) = 0;
  bool queue_empty_ GUARDED_BY(queue_mu_) = true;
};

}  // namespace skadi
