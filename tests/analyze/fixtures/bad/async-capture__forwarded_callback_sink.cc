// Analyzer fixture (not compiled): Defer() is not itself a reactor entry
// point, but it forwards its callback into Post — the escapes-to-deferred
// fixpoint must mark Defer as a sink, and the by-reference capture handed
// to it is then a use-after-return. async-capture must flag the lambda at
// the Defer() call site.
#include <functional>

#include "src/net/reactor.h"

namespace skadi {

class Committer {
 public:
  void Commit(int epoch) {
    int acked = 0;
    Defer([&acked] { acked += 1; });  // reaches Post through Defer
  }

 private:
  void Defer(std::function<void()> fn) {
    reactor_->Post(std::move(fn));  // makes Defer a deferred sink
  }

  Reactor* reactor_;
};

}  // namespace skadi
