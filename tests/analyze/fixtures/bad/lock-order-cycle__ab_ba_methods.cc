// Analyzer fixture (not compiled): the classic AB/BA inversion split
// across two methods of one class. Either order alone is fine; together
// they deadlock on some interleaving. The runtime DebugMutex detector only
// sees this if both paths actually execute — the static graph proves it.
#include "src/common/mutex.h"

namespace skadi {

class Directory {
 public:
  void Promote(ObjectId id) {
    MutexLock index(index_mu_);
    MutexLock stats(stats_mu_);
    hot_count_++;
    promoted_.insert(id);
  }

  void Demote(ObjectId id) {
    MutexLock stats(stats_mu_);
    MutexLock index(index_mu_);
    hot_count_--;
    promoted_.erase(id);
  }

 private:
  Mutex index_mu_;
  Mutex stats_mu_;
  std::set<ObjectId> promoted_ GUARDED_BY(index_mu_);
  int hot_count_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace skadi
