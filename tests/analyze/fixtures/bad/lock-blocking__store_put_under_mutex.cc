// Analyzer fixture (not compiled): a store entry point called with the
// directory mutex held — the store takes its own mu_, which is the inverted
// edge of the DESIGN.md §8 order (LocalObjectStore::mu_ -> CachingLayer::mu_).
#include "src/common/mutex.h"

namespace skadi {

class Directory {
 public:
  Status Insert(const ObjectId& id, const Buffer& data) {
    MutexLock lock(mu_);
    entries_[id] = data.size();
    return primary_store_->Put(id, data);  // blocking store call under mu_
  }

 private:
  Mutex mu_;
  std::unordered_map<ObjectId, size_t> entries_ GUARDED_BY(mu_);
  LocalObjectStore* primary_store_;
};

}  // namespace skadi
