// Analyzer fixture (not compiled): pins are taken, then an error path
// returns before the unpin loop — those entries can never be evicted again.
#include "src/runtime/raylet.h"

namespace skadi {

Status RunOnce(const TaskSpec& spec, NodeId node) {
  for (const TaskArg& arg : spec.args) {
    if (arg.is_ref()) {
      callbacks_.pin_arg(arg.ref(), node);
    }
  }
  Result<Buffer> out = Execute(spec);
  if (!out.ok()) {
    return out.status();  // leaks every pin taken above
  }
  for (const TaskArg& arg : spec.args) {
    if (arg.is_ref()) {
      callbacks_.unpin_arg(arg.ref(), node);
    }
  }
  return Status::Ok();
}

}  // namespace skadi
