// Analyzer fixture (not compiled): a three-lock ring (a->b, b->c, c->a).
// No pair of methods is inconsistent; only the full SCC over the
// acquisition-order graph exposes the deadlock.
#include "src/common/mutex.h"

namespace skadi {

class TripleLedger {
 public:
  void DebitCredit() {
    MutexLock a(accounts_mu_);
    MutexLock b(balances_mu_);
    moves_++;
  }

  void Reconcile() {
    MutexLock b(balances_mu_);
    MutexLock c(audit_mu_);
    moves_++;
  }

  void Audit() {
    MutexLock c(audit_mu_);
    MutexLock a(accounts_mu_);
    moves_++;
  }

 private:
  Mutex accounts_mu_;
  Mutex balances_mu_;
  Mutex audit_mu_;
  int moves_ = 0;
};

}  // namespace skadi
