// Analyzer fixture (not compiled): the post-processing helper looks like
// cleanup but never unpins — and neither does anything it calls. The
// interprocedural pass must prove the absence of an unpin anywhere in the
// transitive callee set before flagging.
#include "src/common/mutex.h"

namespace skadi {

class TaskRunner {
 public:
  Status Execute(ObjectId id) {
    store_->Pin(id);  // lint:allow discarded-status (fixture)
    return Process(id);  // Process never unpins: the entry leaks
  }

 private:
  Status Process(ObjectId id) {
    bytes_seen_ += Measure(id);
    return Status::Ok();
  }

  int64_t Measure(ObjectId id) {
    return static_cast<int64_t>(id.Hash() & 0xff);
  }

  LocalObjectStore* store_;
  int64_t bytes_seen_ = 0;
};

}  // namespace skadi
