// Analyzer fixture (not compiled): the callback is a std::function the
// analyzer cannot resolve; the `// analyze:calls` annotation supplies the
// dispatch edge, and the may-block fixpoint carries the sleep back to the
// locked caller.
#include "src/common/mutex.h"

namespace skadi {

class Poller {
 public:
  void Tick() {
    MutexLock lock(mu_);
    ticks_++;
    RunTimeoutCallback();  // annotated edge makes this transitively block
  }

 private:
  void RunTimeoutCallback() {
    // analyze:calls Poller::BackoffRetry
    on_timeout_();
  }

  void BackoffRetry() {
    std::this_thread::sleep_for(backoff_);
  }

  Mutex mu_;
  int ticks_ GUARDED_BY(mu_) = 0;
  std::function<void()> on_timeout_;
  std::chrono::milliseconds backoff_;
};

}  // namespace skadi
