// Analyzer fixture (not compiled): the batcher does not own the reactor it
// arms the timer on, has no destructor, and offers no lifetime guarantee —
// the tick can fire after the batcher is gone (the PushBatcher bug this
// rule was built from). async-this must flag the raw `this` capture.
#include "src/net/reactor.h"

namespace skadi {

class TickBatcher {
 public:
  void Arm() {
    reactor_->ScheduleAfter(200'000, [this] { Flush(); });
  }

  void Flush() { pending_ = 0; }

 private:
  Reactor* reactor_;  // external: can outlive-or-be-outlived arbitrarily
  int pending_ = 0;
};

}  // namespace skadi
