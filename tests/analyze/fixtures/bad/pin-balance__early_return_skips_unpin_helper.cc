// Analyzer fixture (not compiled): the unpin lives in a helper, so the
// count balances — but the error path returns before the helper runs.
// The interprocedural pass must place the callee-provided unpin at its
// call site for the early-return check to catch this.
#include "src/common/mutex.h"

namespace skadi {

class ValidatingRunner {
 public:
  Status Run(ObjectId id) {
    store_->Pin(id);  // lint:allow discarded-status (fixture)
    Status st = Validate(id);
    if (!st.ok()) {
      return st;  // Release(id) below never runs on this path
    }
    Release(id);
    return Status::Ok();
  }

 private:
  Status Validate(ObjectId id) {
    if (id.Hash() == 0) {
      return Status::InvalidArgument("null object id");
    }
    return Status::Ok();
  }

  void Release(ObjectId id) {
    store_->Unpin(id);  // lint:allow discarded-status (fixture)
  }

  LocalObjectStore* store_;
};

}  // namespace skadi
