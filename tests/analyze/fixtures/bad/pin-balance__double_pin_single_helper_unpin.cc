// Analyzer fixture (not compiled): two pins, one unpinning helper call.
// Callee-provided unpins count toward the balance, but the counts still
// do not match — one of the two entries leaks.
#include "src/common/mutex.h"

namespace skadi {

class PairLoader {
 public:
  void LoadPair(ObjectId left, ObjectId right) {
    store_->Pin(left);  // lint:allow discarded-status (fixture)
    store_->Pin(right);  // lint:allow discarded-status (fixture)
    Combine(left, right);
    ReleaseOne(left);  // right stays pinned forever
  }

 private:
  void Combine(ObjectId left, ObjectId right) {
    merged_ = left.Hash() ^ right.Hash();
  }

  void ReleaseOne(ObjectId id) {
    store_->Unpin(id);  // lint:allow discarded-status (fixture)
  }

  LocalObjectStore* store_;
  uint64_t merged_ = 0;
};

}  // namespace skadi
