// Analyzer fixture (not compiled): the string_view is captured by value,
// but a view is a non-owning pointer+length — the std::string backing it is
// a frame-local that dies when Announce() returns, long before the posted
// continuation reads it. async-view-escape must flag the view capture.
#include <string>
#include <string_view>

#include "src/net/reactor.h"

namespace skadi {

class Announcer {
 public:
  void Announce() {
    std::string banner = BuildBanner();
    std::string_view text = banner;
    reactor_->Post([text] { Emit(text); });  // view outlives its backing
  }

 private:
  std::string BuildBanner();
  static void Emit(std::string_view t);

  Reactor* reactor_;
};

}  // namespace skadi
