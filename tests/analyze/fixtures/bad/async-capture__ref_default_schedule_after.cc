// Analyzer fixture (not compiled): a [&] default capture silently takes
// every frame-local the body touches by reference; the timer fires 1ms
// after Probe() returned, pointing into a dead frame. async-capture must
// flag the [&] default's frame-locals.
#include "src/net/reactor.h"

namespace skadi {

class HealthProbe {
 public:
  void Probe() {
    int attempts = 0;
    bool healthy = false;
    reactor_->ScheduleAfter(1'000'000, [&] {
      attempts += 1;
      healthy = attempts < 3;
    });
  }

 private:
  Reactor* reactor_;
};

}  // namespace skadi
