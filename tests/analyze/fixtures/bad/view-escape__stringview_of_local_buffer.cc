// Analyzer fixture (not compiled): AsStringView() does not hold the Buffer's
// owner refcount; returning it over a local Buffer dangles.
#include "src/common/buffer.h"

namespace skadi {

std::string_view Label() {
  Buffer buf = Buffer::FromString("hot");
  return buf.AsStringView();  // buf (and its owner) die with the frame
}

}  // namespace skadi
