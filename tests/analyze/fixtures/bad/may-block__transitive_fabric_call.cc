// Analyzer fixture (not compiled): a two-hop chain ending in a fabric RPC.
// Neither intermediate function mentions the fabric, so only the call-graph
// fixpoint connects Flush -> PushAll -> SendOne -> fabric_->Send.
#include "src/common/mutex.h"

namespace skadi {

class Replicator {
 public:
  Status Flush() {
    MutexLock lock(mu_);
    pending_ = 0;
    return PushAll();  // transitively reaches fabric_->Send under mu_
  }

 private:
  Status PushAll() {
    for (int i = 0; i < 3; ++i) {
      SendOne(i);
    }
    return Status::Ok();
  }

  void SendOne(int shard) {
    fabric_->Send(NodeId(shard), payload_);
  }

  Mutex mu_;
  int pending_ GUARDED_BY(mu_) = 0;
  Fabric* fabric_;
  Buffer payload_;
};

}  // namespace skadi
