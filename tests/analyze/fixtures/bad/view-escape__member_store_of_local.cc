// Analyzer fixture (not compiled): a member view rebound to a local staging
// vector — the member outlives the storage by construction.
#include "src/common/array_view.h"

namespace skadi {

class ColumnCache {
 public:
  void Refresh() {
    std::vector<int64_t> staging = Recompute();
    ints_ = ArrayView<int64_t>(staging.data(), staging.size());  // dangles
  }

 private:
  std::vector<int64_t> Recompute();
  ArrayView<int64_t> ints_;
};

}  // namespace skadi
