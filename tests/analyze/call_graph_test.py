#!/usr/bin/env python3
"""Unit tests for the whole-program call graph (tools/analyze/call_graph.py).

Exercises call-site resolution — qualified calls, receiver chains through
locals/members/accessors, overload sets, lambdas, `// analyze:calls`
annotations — plus the interprocedural facts the passes consume (held-lock
sets, canonical mutex names, may-block seeds). Registered as the
`analyze_callgraph_test` ctest test.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "tools", "analyze"))

import call_graph
import cpp_model
import interproc


def graph_of(*files):
    """files: (rel_path, source) pairs -> CallGraph."""
    summaries = []
    for rel, text in files:
        model = cpp_model.FileModel(rel, text)
        summaries.append(call_graph.summarize_file(model, rel))
    return call_graph.CallGraph(summaries)


def targets_of(graph, caller_display, callee):
    """Resolved target display names for caller's call(s) to `callee`."""
    out = []
    for uid, f in graph.functions.items():
        if f["display"] != caller_display:
            continue
        for (call, targets) in graph.out_edges(uid):
            if call["callee"] == callee:
                out.extend(graph.functions[t]["display"] for t in targets)
    return sorted(out)


class ResolutionTest(unittest.TestCase):
    def test_qualified_call(self):
        g = graph_of(("a.cc", """
        struct Codec { static int Decode(int x) { return x; } };
        int Use() { return Codec::Decode(1); }
        """))
        self.assertEqual(targets_of(g, "Use", "Decode"), ["Codec::Decode"])

    def test_receiver_typed_local_pointer(self):
        g = graph_of(("a.cc", """
        class Store { public: void Compact() { n_ = 0; } int n_; };
        void Sweep(Store* store) { store->Compact(); }
        """))
        self.assertEqual(targets_of(g, "Sweep", "Compact"),
                         ["Store::Compact"])

    def test_receiver_member_declared_in_other_file(self):
        # The member lives in the header, the call in the .cc — resolution
        # must go through the merged cross-file class-member map.
        g = graph_of(
            ("r.h", """
            class Fabric { public: void Ping() { seq_++; } int seq_; };
            class Raylet { Fabric* fabric_; public: void Beat(); };
            """),
            ("r.cc", """
            void Raylet::Beat() { fabric_->Ping(); }
            """))
        self.assertEqual(targets_of(g, "Raylet::Beat", "Ping"),
                         ["Fabric::Ping"])

    def test_accessor_chain(self):
        # cluster_->cache().Touch(): the accessor's return type carries the
        # chain to the next class.
        g = graph_of(("a.cc", """
        class Cache { public: void Touch() { hits_++; } int hits_; };
        class Cluster { public: Cache& cache() { return cache_impl_; }
                        Cache cache_impl_; };
        class Driver {
          Cluster* cluster_;
         public:
          void Warm() { cluster_->cache().Touch(); }
        };
        """))
        self.assertEqual(targets_of(g, "Driver::Warm", "Touch"),
                         ["Cache::Touch"])

    def test_member_field_chain(self):
        g = graph_of(("a.cc", """
        class Queue { public: void Drain() { n_ = 0; } int n_; };
        class Worker { public: Queue inbox_; };
        class Pool {
          Worker* lead_;
         public:
          void Flush() { lead_->inbox_.Drain(); }
        };
        """))
        self.assertEqual(targets_of(g, "Pool::Flush", "Drain"),
                         ["Queue::Drain"])

    def test_bare_call_prefers_same_class(self):
        g = graph_of(("a.cc", """
        void Helper() {}
        class Task {
         public:
          void Go() { Helper(); }
          void Helper() { n_++; }
          int n_;
        };
        """))
        self.assertEqual(targets_of(g, "Task::Go", "Helper"),
                         ["Task::Helper"])

    def test_this_receiver(self):
        g = graph_of(("a.cc", """
        class Task {
         public:
          void Go() { this->Step(); }
          void Step() { n_++; }
          int n_;
        };
        """))
        self.assertEqual(targets_of(g, "Task::Go", "Step"), ["Task::Step"])

    def test_unique_free_function_by_name(self):
        g = graph_of(
            ("a.cc", "int ChecksumOf(int x) { return x * 7; }"),
            ("b.cc", "int Use(int x) { return ChecksumOf(x); }"))
        self.assertEqual(targets_of(g, "Use", "ChecksumOf"), ["ChecksumOf"])

    def test_overload_set_resolves_to_all_overloads(self):
        g = graph_of(("a.cc", """
        int Pack(int x) { return x; }
        int Pack(int x, int y) { return x + y; }
        int Use() { return Pack(1, 2); }
        """))
        self.assertEqual(targets_of(g, "Use", "Pack"), ["Pack", "Pack"])

    def test_ambiguous_name_never_links(self):
        # `it->second.Get()` must not alias every Get in the program.
        g = graph_of(("a.cc", """
        class Store { public: int Get(int k) { return k; } };
        void Scan(std::map<int, Thing>& m) {
          auto it = m.begin();
          it->second.Get(0);
        }
        """))
        self.assertEqual(targets_of(g, "Scan", "Get"), [])

    def test_same_name_across_classes_blocks_name_fallback(self):
        g = graph_of(("a.cc", """
        class A { public: void Refresh() { n_++; } int n_; };
        class B { public: void Refresh() { m_++; } int m_; };
        void Use(Unknown* u) { u->Refresh(); }
        """))
        self.assertEqual(targets_of(g, "Use", "Refresh"), [])

    def test_annotated_calls_edge(self):
        g = graph_of(("a.cc", """
        class Loop {
         public:
          void Dispatch() {
            // analyze:calls Loop::OnTimer
            cb_();
          }
          void OnTimer() { fired_++; }
          std::function<void()> cb_;
          int fired_;
        };
        """))
        self.assertEqual(targets_of(g, "Loop::Dispatch", "OnTimer"),
                         ["Loop::OnTimer"])

    def test_held_locks_use_canonical_class_names(self):
        g = graph_of(("a.cc", """
        class Cache {
         public:
          void Evict() {
            MutexLock lock(mu_);
            Purge();
          }
          void Purge() { n_ = 0; }
          Mutex mu_;
          int n_;
        };
        """))
        uid = next(u for u, f in g.functions.items()
                   if f["display"] == "Cache::Evict")
        call = next(c for (c, _) in g.out_edges(uid)
                    if c["callee"] == "Purge")
        self.assertEqual(call["held"], ["Cache::mu_"])

    def test_may_block_propagates_through_chain(self):
        g = graph_of(("a.cc", """
        class R {
         public:
          void A() { B(); }
          void B() { C(); }
          void C() { std::this_thread::sleep_for(d_); }
          int d_;
        };
        """))
        info = interproc.compute_may_block(g)
        displays = {g.functions[u]["display"] for u in info}
        self.assertEqual(displays, {"R::A", "R::B", "R::C"})
        a_uid = next(u for u, f in g.functions.items()
                     if f["display"] == "R::A")
        self.assertEqual(info[a_uid]["kinds"], {"sleep"})

    def test_lambda_call_does_not_propagate_may_block(self):
        g = graph_of(("a.cc", """
        class R {
         public:
          void A() { Post([this] { C(); }); }
          void C() { std::this_thread::sleep_for(d_); }
          int d_;
        };
        """))
        info = interproc.compute_may_block(g)
        displays = {g.functions[u]["display"] for u in info}
        # The continuation body is a pseudo-function and is itself
        # may-block (it calls C), but the deferred edge must not leak
        # blocking-ness back into the registering frame A.
        self.assertEqual(displays, {"R::C", "R::A::<lambda:4:0>"})
        self.assertNotIn("R::A", displays)

    def test_wait_own_lock_is_seed_but_not_held_hazard(self):
        g = graph_of(("a.cc", """
        class Q {
         public:
          void Pop() {
            MutexLock lock(mu_);
            while (empty_) { cv_.Wait(lock); }
          }
          Mutex mu_;
          CondVar cv_;
          bool empty_;
        };
        """))
        info = interproc.compute_may_block(g)
        findings = interproc.check_may_block(g, info)
        self.assertEqual(len(info), 1)  # Pop is a condvar-wait seed
        self.assertEqual(findings, [])  # but Wait(own lock) is not a hazard

    def test_call_site_counts_rank_callees(self):
        g = graph_of(("a.cc", """
        void Leaf() {}
        void U1() { Leaf(); }
        void U2() { Leaf(); Leaf(); }
        """))
        leaf = next(u for u, f in g.functions.items()
                    if f["display"] == "Leaf")
        self.assertEqual(g.call_site_count(leaf), 3)


class AsyncLifetimeTest(unittest.TestCase):
    """The escapes-to-deferred fixpoint and the three async rules
    (tools/analyze/async_lifetime.py)."""

    @staticmethod
    def _run(*files):
        import async_lifetime
        g = graph_of(*files)
        return async_lifetime.run(g)

    @staticmethod
    def _rules(findings):
        return sorted({f.rule for f in findings})

    def test_ref_capture_to_post_flagged(self):
        findings, dump = self._run(("src/a.cc", """
        class A {
         public:
          void F() {
            int x = 0;
            reactor_->Post([&x] { x++; });
          }
          Reactor* reactor_;
        };
        """))
        self.assertEqual(self._rules(findings), ["async-capture"])
        self.assertEqual(dump["total"], 1)
        self.assertIn("flagged: async-capture",
                      dump["sites"][0]["classification"])

    def test_value_capture_clean(self):
        findings, dump = self._run(("src/a.cc", """
        class A {
         public:
          void F() {
            auto state = std::make_shared<int>(0);
            reactor_->Post([state] { (*state)++; });
          }
          Reactor* reactor_;
        };
        """))
        self.assertEqual(findings, [])
        self.assertEqual(dump["sites"][0]["classification"],
                         "safe (by-value captures)")

    def test_forwarding_helper_becomes_sink(self):
        findings, dump = self._run(("src/a.cc", """
        class A {
         public:
          void F() {
            int x = 0;
            Defer([&x] { x++; });
          }
          void Defer(std::function<void()> fn) {
            reactor_->Post(std::move(fn));
          }
          Reactor* reactor_;
        };
        """))
        self.assertEqual(self._rules(findings), ["async-capture"])
        # Both the Defer() registration and the inner Post(fn) forwarding
        # site are inventoried.
        self.assertEqual(dump["total"], 2)

    def test_raw_this_without_guarantee_flagged(self):
        findings, _ = self._run(("src/a.cc", """
        class A {
         public:
          void F() { reactor_->ScheduleAfter(1000, [this] { n_++; }); }
          Reactor* reactor_;
          int n_;
        };
        """))
        self.assertEqual(self._rules(findings), ["async-this"])

    def test_shared_from_this_guard_passes(self):
        findings, dump = self._run(("src/a.cc", """
        class A : public std::enable_shared_from_this<A> {
         public:
          void F() {
            auto self = shared_from_this();
            reactor_->Post([this, self] { n_++; });
          }
          Reactor* reactor_;
          int n_;
        };
        """))
        self.assertEqual(findings, [])
        self.assertIn("strong guard", dump["sites"][0]["classification"])

    def test_owned_reactor_with_dtor_shutdown_passes(self):
        findings, dump = self._run(("src/a.cc", """
        class A {
         public:
          ~A() { workers_.Shutdown(); }
          void F() { workers_.Post([this] { n_++; }); }
          Reactor workers_;
          int n_;
        };
        class Reactor {
         public:
          bool Post(Continuation fn);
          void Shutdown();
        };
        """))
        self.assertEqual(findings, [])
        self.assertIn("owned reactor", dump["sites"][0]["classification"])

    def test_owned_reactor_without_dtor_flagged(self):
        findings, _ = self._run(("src/a.cc", """
        class A {
         public:
          void F() { workers_.Post([this] { n_++; }); }
          Reactor workers_;
          int n_;
        };
        """))
        self.assertEqual(self._rules(findings), ["async-this"])

    def test_lifetime_annotation_suppresses(self):
        findings, dump = self._run(("src/a.cc", """
        class A {
         public:
          void F() {
            int x = 0;
            // analyze:lifetime frame outlives continuation (drained below)
            reactor_->Post([&x] { x++; });
          }
          Reactor* reactor_;
        };
        """))
        self.assertEqual(findings, [])
        self.assertIn("annotated", dump["sites"][0]["classification"])

    def test_view_capture_flagged_value_and_ref(self):
        findings, _ = self._run(("src/a.cc", """
        class A {
         public:
          void F() {
            std::string_view name = Name();
            reactor_->Post([name] { Use(name); });
          }
          void G() {
            ArrayView<int> rows = Rows();
            reactor_->Post([&rows] { Use2(rows); });
          }
          Reactor* reactor_;
        };
        """))
        self.assertEqual(sorted(f.rule for f in findings),
                         ["async-view-escape", "async-view-escape"])

    def test_non_sink_callback_not_flagged(self):
        findings, dump = self._run(("src/a.cc", """
        class A {
         public:
          void F() {
            int x = 0;
            ForEach([&x] { x++; });  // synchronous callback, not a sink
          }
          void ForEach(std::function<void()> fn) { fn(); }
        };
        """))
        self.assertEqual(findings, [])
        self.assertEqual(dump["total"], 0)

    def test_tests_are_exempt_but_inventoried(self):
        findings, dump = self._run(("tests/a_test.cc", """
        void Check() {
          int x = 0;
          Post([&x] { x++; });
        }
        """))
        self.assertEqual(findings, [])
        self.assertEqual(dump["total"], 1)
        self.assertIn("exempt (tests/bench): async-capture",
                      dump["sites"][0]["classification"])

    def test_deferred_edges_do_not_feed_lock_order_from_post_site(self):
        # A continuation that takes mu_b_ while the registering frame holds
        # mu_a_: the locks at the Post site are NOT held when the body runs,
        # so no a->b lock-order edge may appear from the deferred hop.
        g = graph_of(("src/a.cc", """
        class A {
         public:
          void F() {
            MutexLock lock(mu_a_);
            reactor_->Post([this] {
              MutexLock inner(mu_b_);
              n_++;
            });
          }
          Mutex mu_a_;
          Mutex mu_b_;
          Reactor* reactor_;
          int n_;
        };
        """))
        trans = interproc.compute_transitive_acquires(g)
        edges = interproc.build_lock_order_graph(g, trans)
        flat = {(a, b) for a, succ in edges.items() for b in succ}
        self.assertFalse(any("mu_a_" in a and "mu_b_" in b
                             for (a, b) in flat), flat)
        # The continuation body's own acquisition still exists in the
        # graph's functions (pseudo-function), just with no held-edge.
        self.assertTrue(any("<lambda:" in f["display"]
                            for f in g.functions.values()))


if __name__ == "__main__":
    unittest.main()
