// Unit tests of logical -> physical lowering (no execution).
#include "src/graph/physical.h"

#include <gtest/gtest.h>

#include "src/ir/dialects.h"

namespace skadi {
namespace {

std::shared_ptr<IrFunction> Identity() {
  auto fn = std::make_shared<IrFunction>("id");
  ValueId t = fn->AddParam(IrType::Table());
  fn->SetReturns({t});
  return fn;
}

std::shared_ptr<IrFunction> TwoInput() {
  auto fn = std::make_shared<IrFunction>("two");
  ValueId a = fn->AddParam(IrType::Table());
  ValueId b = fn->AddParam(IrType::Table());
  ValueId j = EmitJoin(*fn, a, b, {"k"}, {"k"});
  fn->SetReturns({j});
  return fn;
}

TEST(PhysicalLoweringTest, DefaultParallelismApplied) {
  FlowGraph g;
  VertexId v = g.AddIrVertex("a", Identity());
  FunctionRegistry registry;
  LoweringOptions options;
  options.default_parallelism = 5;
  auto physical = LowerToPhysical(g, options, &registry);
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->plan(v)->parallelism, 5);
}

TEST(PhysicalLoweringTest, HintOverridesDefault) {
  FlowGraph g;
  VertexId v = g.AddIrVertex("a", Identity());
  g.vertex(v)->parallelism_hint = 3;
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->plan(v)->parallelism, 3);
}

TEST(PhysicalLoweringTest, NumInputsFromIrParams) {
  FlowGraph g;
  VertexId one = g.AddIrVertex("one", Identity());
  VertexId two = g.AddIrVertex("two", TwoInput());
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->plan(one)->num_inputs, 1);
  EXPECT_EQ(physical->plan(two)->num_inputs, 2);
}

TEST(PhysicalLoweringTest, VertexFunctionsRegistered) {
  FlowGraph g;
  VertexId v = g.AddIrVertex("a", Identity());
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  EXPECT_TRUE(registry.Contains(physical->plan(v)->task_function));
}

TEST(PhysicalLoweringTest, ShuffleEdgeRegistersWriter) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", Identity());
  VertexId b = g.AddIrVertex("b", Identity());
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kShuffle, {"k"}).ok());
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  ASSERT_EQ(physical->edges.size(), 1u);
  EXPECT_FALSE(physical->edges[0].shuffle_function.empty());
  EXPECT_TRUE(registry.Contains(physical->edges[0].shuffle_function));
}

TEST(PhysicalLoweringTest, ForwardEdgeHasNoWriter) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", Identity());
  VertexId b = g.AddIrVertex("b", Identity());
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kForward).ok());
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  EXPECT_TRUE(physical->edges[0].shuffle_function.empty());
}

TEST(PhysicalLoweringTest, MissingBuiltinRejected) {
  FlowGraph g;
  g.AddBuiltinVertex("v", "never_registered");
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  EXPECT_EQ(physical.status().code(), StatusCode::kNotFound);
}

TEST(PhysicalLoweringTest, InvalidOptionsRejected) {
  FlowGraph g;
  g.AddIrVertex("a", Identity());
  FunctionRegistry registry;
  LoweringOptions bad;
  bad.default_parallelism = 0;
  EXPECT_FALSE(LowerToPhysical(g, bad, &registry).ok());
  LoweringOptions no_backends;
  no_backends.available_backends = {};
  EXPECT_FALSE(LowerToPhysical(g, no_backends, &registry).ok());
}

TEST(PhysicalLoweringTest, SourcesAndSinksComputed) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", Identity());
  VertexId b = g.AddIrVertex("b", Identity());
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->Sources(), std::vector<VertexId>{a});
  EXPECT_EQ(physical->Sinks(), std::vector<VertexId>{b});
}

TEST(PhysicalLoweringTest, ToStringShowsShardCounts) {
  FlowGraph g;
  VertexId v = g.AddIrVertex("vertexD", Identity());
  g.vertex(v)->parallelism_hint = 7;
  FunctionRegistry registry;
  auto physical = LowerToPhysical(g, {}, &registry);
  ASSERT_TRUE(physical.ok());
  std::string s = physical->ToString();
  EXPECT_NE(s.find("vertexD"), std::string::npos);
  EXPECT_NE(s.find("x7"), std::string::npos);
}

TEST(PhysicalLoweringTest, ArgHeaderRoundTrip) {
  Buffer header = MakeVertexArgHeader({2, 1, 3});
  BufferReader r(header);
  EXPECT_EQ(r.ReadU32(), 3u);
  EXPECT_EQ(r.ReadU32(), 2u);
  EXPECT_EQ(r.ReadU32(), 1u);
  EXPECT_EQ(r.ReadU32(), 3u);
}

}  // namespace
}  // namespace skadi
