// End-to-end: logical FlowGraph -> physical sharded graph -> tasks on the
// stateful serverless runtime (the full Figure 2 path).
#include "src/graph/executor.h"

#include <gtest/gtest.h>

#include "src/format/serde.h"
#include "src/ir/dialects.h"

namespace skadi {
namespace {

class GraphExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 2;
    config.workers_per_server = 2;
    cluster_ = Cluster::Create(config);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_);
  }

  RecordBatch NumbersBatch(int64_t from, int64_t to) {
    ColumnBuilder xs(DataType::kInt64);
    ColumnBuilder gs(DataType::kInt64);
    for (int64_t i = from; i < to; ++i) {
      xs.AppendInt64(i);
      gs.AppendInt64(i % 5);
    }
    Schema schema({{"x", DataType::kInt64}, {"g", DataType::kInt64}});
    auto batch = RecordBatch::Make(schema, {xs.Finish(), gs.Finish()});
    return std::move(batch).value();
  }

  ObjectRef PutBatch(const RecordBatch& batch) {
    auto ref = runtime_->Put(SerializeBatchIpc(batch));
    EXPECT_TRUE(ref.ok());
    return *ref;
  }

  Result<RecordBatch> GetBatch(const ObjectRef& ref) {
    SKADI_ASSIGN_OR_RETURN(Buffer buffer, runtime_->Get(ref));
    return DeserializeBatchIpc(buffer);
  }

  std::shared_ptr<IrFunction> FilterGt(int64_t threshold) {
    auto fn = std::make_shared<IrFunction>("flt");
    ValueId t = fn->AddParam(IrType::Table());
    ValueId f = EmitFilter(
        *fn, t, Expr::Binary(BinaryOp::kGt, Expr::Col("x"), Expr::Int(threshold)));
    fn->SetReturns({f});
    return fn;
  }

  std::shared_ptr<IrFunction> SumByG() {
    auto fn = std::make_shared<IrFunction>("agg");
    ValueId t = fn->AddParam(IrType::Table());
    ValueId a = EmitAggregate(*fn, t, {"g"}, {{AggKind::kSum, "x", "sum_x"}});
    fn->SetReturns({a});
    return fn;
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(GraphExecTest, SingleVertexFilter) {
  FlowGraph g;
  VertexId v = g.AddIrVertex("filter", FilterGt(90), OpClass::kFilter);
  g.vertex(v)->parallelism_hint = 1;

  LoweringOptions options;
  auto physical = LowerToPhysical(g, options, &registry_);
  ASSERT_TRUE(physical.ok());

  GraphExecutor executor(runtime_.get());
  auto result = executor.RunToCompletion(*physical, {{v, {PutBatch(NumbersBatch(0, 100))}}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->sink_outputs.size(), 1u);

  auto batch = GetBatch(result->sink_outputs.at(v)[0]);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 9);  // 91..99
}

TEST_F(GraphExecTest, ShardedSourceRoundRobinCoversAllInput) {
  FlowGraph g;
  VertexId v = g.AddIrVertex("filter", FilterGt(-1), OpClass::kFilter);
  g.vertex(v)->parallelism_hint = 2;

  auto physical = LowerToPhysical(g, {}, &registry_);
  ASSERT_TRUE(physical.ok());

  // 4 input partitions over 2 shards.
  std::vector<ObjectRef> inputs;
  for (int p = 0; p < 4; ++p) {
    inputs.push_back(PutBatch(NumbersBatch(p * 10, p * 10 + 10)));
  }
  GraphExecutor executor(runtime_.get());
  auto result = executor.RunToCompletion(*physical, {{v, inputs}});
  ASSERT_TRUE(result.ok());

  int64_t total_rows = 0;
  for (const ObjectRef& ref : result->sink_outputs.at(v)) {
    auto batch = GetBatch(ref);
    ASSERT_TRUE(batch.ok());
    total_rows += batch->num_rows();
  }
  EXPECT_EQ(total_rows, 40);
}

TEST_F(GraphExecTest, ShuffleGroupByMatchesSingleNodeResult) {
  // filter -> shuffle(g) -> aggregate, sharded 2x2.
  FlowGraph g;
  VertexId f = g.AddIrVertex("filter", FilterGt(-1), OpClass::kFilter);
  VertexId a = g.AddIrVertex("agg", SumByG(), OpClass::kAggregate);
  g.vertex(f)->parallelism_hint = 2;
  g.vertex(a)->parallelism_hint = 2;
  ASSERT_TRUE(g.AddEdge(f, a, EdgeKind::kShuffle, {"g"}).ok());

  auto physical = LowerToPhysical(g, {}, &registry_);
  ASSERT_TRUE(physical.ok());

  RecordBatch input = NumbersBatch(0, 200);
  GraphExecutor executor(runtime_.get());
  auto result = executor.RunToCompletion(
      *physical, {{f, {PutBatch(input.Slice(0, 100)), PutBatch(input.Slice(100, 100))}}});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->shuffle_tasks, 0);

  // Merge the sharded aggregate outputs and compare with the single-node
  // reference aggregation.
  std::vector<RecordBatch> pieces;
  for (const ObjectRef& ref : result->sink_outputs.at(a)) {
    auto batch = GetBatch(ref);
    ASSERT_TRUE(batch.ok());
    pieces.push_back(std::move(batch).value());
  }
  auto merged = ConcatBatches(pieces);
  ASSERT_TRUE(merged.ok());
  auto reference = GroupAggregateBatch(input, {"g"}, {{AggKind::kSum, "x", "sum_x"}});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(merged->num_rows(), reference->num_rows());

  auto sorted_merged = SortBatch(*merged, {{"g", true}});
  auto sorted_ref = SortBatch(*reference, {{"g", true}});
  for (int64_t i = 0; i < sorted_ref->num_rows(); ++i) {
    EXPECT_EQ(sorted_merged->ColumnByName("sum_x")->Int64At(i),
              sorted_ref->ColumnByName("sum_x")->Int64At(i));
  }
}

TEST_F(GraphExecTest, BroadcastFansInAllShards) {
  // 2-shard filter -> broadcast -> 1-shard aggregate sees all rows.
  FlowGraph g;
  VertexId f = g.AddIrVertex("filter", FilterGt(-1), OpClass::kFilter);
  auto count_fn = std::make_shared<IrFunction>("count");
  ValueId t = count_fn->AddParam(IrType::Table());
  ValueId c = EmitAggregate(*count_fn, t, {}, {{AggKind::kCount, "*", "n"}});
  count_fn->SetReturns({c});
  VertexId agg = g.AddIrVertex("count", count_fn, OpClass::kAggregate);
  g.vertex(f)->parallelism_hint = 2;
  g.vertex(agg)->parallelism_hint = 1;
  ASSERT_TRUE(g.AddEdge(f, agg, EdgeKind::kBroadcast).ok());

  auto physical = LowerToPhysical(g, {}, &registry_);
  ASSERT_TRUE(physical.ok());
  GraphExecutor executor(runtime_.get());
  auto result = executor.RunToCompletion(
      *physical,
      {{f, {PutBatch(NumbersBatch(0, 30)), PutBatch(NumbersBatch(30, 80))}}});
  ASSERT_TRUE(result.ok());

  auto batch = GetBatch(result->sink_outputs.at(agg)[0]);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->ColumnByName("n")->Int64At(0), 80);
}

TEST_F(GraphExecTest, BuiltinVertexRuns) {
  ASSERT_TRUE(registry_.Register("double_rows", [](TaskContext&, std::vector<Buffer>& args)
                                        -> Result<std::vector<Buffer>> {
    SKADI_ASSIGN_OR_RETURN(RecordBatch batch, DeserializeBatchIpc(args[0]));
    SKADI_ASSIGN_OR_RETURN(
        RecordBatch out,
        ProjectBatch(batch, {{Expr::Binary(BinaryOp::kMul, Expr::Col("x"), Expr::Int(2)),
                              "x2"}}));
    return std::vector<Buffer>{SerializeBatchIpc(out)};
  }).ok());

  FlowGraph g;
  VertexId v = g.AddBuiltinVertex("doubler", "double_rows", OpClass::kProject);
  g.vertex(v)->parallelism_hint = 1;
  auto physical = LowerToPhysical(g, {}, &registry_);
  ASSERT_TRUE(physical.ok());

  GraphExecutor executor(runtime_.get());
  auto result = executor.RunToCompletion(*physical, {{v, {PutBatch(NumbersBatch(0, 5))}}});
  ASSERT_TRUE(result.ok());
  auto batch = GetBatch(result->sink_outputs.at(v)[0]);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->ColumnByName("x2")->Int64At(4), 8);
}

TEST_F(GraphExecTest, TensorVerticesFlow) {
  // matmul vertex -> relu vertex via forward edge, DOP 1.
  auto mm = std::make_shared<IrFunction>("mm");
  ValueId a = mm->AddParam(IrType::Tensor());
  ValueId b = mm->AddParam(IrType::Tensor());
  ValueId c = EmitMatmul(*mm, a, b);
  mm->SetReturns({c});

  auto act = std::make_shared<IrFunction>("act");
  ValueId x = act->AddParam(IrType::Tensor());
  ValueId r = EmitRelu(*act, x);
  act->SetReturns({r});

  FlowGraph g;
  VertexId vm = g.AddIrVertex("matmul", mm, OpClass::kMatmul);
  VertexId va = g.AddIrVertex("relu", act, OpClass::kElementwise);
  g.vertex(vm)->parallelism_hint = 1;
  g.vertex(va)->parallelism_hint = 1;
  ASSERT_TRUE(g.AddEdge(vm, va).ok());

  LoweringOptions options;
  options.run_ir_passes = false;  // keep the two-vertex structure
  auto physical = LowerToPhysical(g, options, &registry_);
  ASSERT_TRUE(physical.ok());

  auto at = Tensor::FromData({2, 2}, {1, -2, 3, -4});
  auto bt = Tensor::FromData({2, 2}, {1, 0, 0, 1});
  auto ra = runtime_->Put(SerializeTensor(*at));
  auto rb = runtime_->Put(SerializeTensor(*bt));

  GraphExecutor executor(runtime_.get());
  auto result = executor.RunToCompletion(*physical, {{vm, {*ra, *rb}}});
  ASSERT_TRUE(result.ok());

  auto buffer = runtime_->Get(result->sink_outputs.at(va)[0]);
  ASSERT_TRUE(buffer.ok());
  auto tensor = DeserializeTensor(*buffer);
  ASSERT_TRUE(tensor.ok());
  EXPECT_EQ(tensor->data(), (std::vector<double>{1, 0, 3, 0}));
}

TEST_F(GraphExecTest, MissingSourceInputRejected) {
  FlowGraph g;
  g.AddIrVertex("filter", FilterGt(0));
  auto physical = LowerToPhysical(g, {}, &registry_);
  ASSERT_TRUE(physical.ok());
  GraphExecutor executor(runtime_.get());
  auto result = executor.Run(*physical, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphExecTest, LoweringSelectsDeclaredBackends) {
  auto mm = std::make_shared<IrFunction>("mm2");
  ValueId a = mm->AddParam(IrType::Tensor());
  ValueId c = EmitMatmul(*mm, a, a);
  mm->SetReturns({c});

  FlowGraph g;
  VertexId v = g.AddIrVertex("matmul", mm, OpClass::kMatmul);
  LoweringOptions options;
  options.available_backends = {DeviceKind::kCpu, DeviceKind::kGpu};
  options.assumed_bytes = 64 << 20;
  auto physical = LowerToPhysical(g, options, &registry_);
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ(physical->plan(v)->backend, DeviceKind::kGpu);
}

TEST_F(GraphExecTest, ForwardParallelismMismatchRejected) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("f1", FilterGt(0));
  VertexId b = g.AddIrVertex("f2", FilterGt(1));
  g.vertex(a)->parallelism_hint = 2;
  g.vertex(b)->parallelism_hint = 3;
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  auto physical = LowerToPhysical(g, {}, &registry_);
  ASSERT_TRUE(physical.ok());
  GraphExecutor executor(runtime_.get());
  auto result = executor.Run(
      *physical, {{a, {PutBatch(NumbersBatch(0, 10)), PutBatch(NumbersBatch(10, 20))}}});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skadi
