#include "src/graph/flow_graph.h"

#include <gtest/gtest.h>

#include "src/ir/dialects.h"

namespace skadi {
namespace {

std::shared_ptr<IrFunction> FilterFn(int64_t threshold) {
  auto fn = std::make_shared<IrFunction>("filter" + std::to_string(threshold));
  ValueId t = fn->AddParam(IrType::Table());
  ValueId f = EmitFilter(
      *fn, t, Expr::Binary(BinaryOp::kGt, Expr::Col("x"), Expr::Int(threshold)));
  fn->SetReturns({f});
  return fn;
}

std::shared_ptr<IrFunction> ProjectFn() {
  auto fn = std::make_shared<IrFunction>("proj");
  ValueId t = fn->AddParam(IrType::Table());
  ValueId p = fn->Emit(kOpRelProject, {t}, IrType::Table(),
                       {{"projections", IrAttr(std::vector<ProjectionSpec>{
                             {Expr::Col("x"), "x"}})}});
  fn->SetReturns({p});
  return fn;
}

TEST(FlowGraphTest, BuildAndTopoOrder) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", FilterFn(0), OpClass::kFilter);
  VertexId b = g.AddIrVertex("b", ProjectFn(), OpClass::kProject);
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.Validate().ok());
  auto order = g.TopoOrder();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], a);
  EXPECT_EQ((*order)[1], b);
  EXPECT_EQ(g.Sources(), std::vector<VertexId>{a});
  EXPECT_EQ(g.Sinks(), std::vector<VertexId>{b});
}

TEST(FlowGraphTest, CycleDetected) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", FilterFn(0));
  VertexId b = g.AddIrVertex("b", ProjectFn());
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  EXPECT_EQ(g.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(FlowGraphTest, ShuffleEdgeRequiresKeys) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", FilterFn(0));
  VertexId b = g.AddIrVertex("b", ProjectFn());
  EXPECT_EQ(g.AddEdge(a, b, EdgeKind::kShuffle).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(g.AddEdge(a, b, EdgeKind::kShuffle, {"x"}).ok());
}

TEST(FlowGraphTest, EdgeToUnknownVertexRejected) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("a", FilterFn(0));
  EXPECT_EQ(g.AddEdge(a, VertexId(987654)).code(), StatusCode::kInvalidArgument);
}

TEST(FlowGraphTest, BuiltinVertexValidates) {
  FlowGraph g;
  g.AddBuiltinVertex("custom", "my_fn", OpClass::kGeneric);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(FlowGraphTest, ToStringShowsStructure) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("scan_filter", FilterFn(0));
  VertexId b = g.AddBuiltinVertex("sinkv", "fn");
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kShuffle, {"x"}).ok());
  std::string s = g.ToString();
  EXPECT_NE(s.find("scan_filter"), std::string::npos);
  EXPECT_NE(s.find("shuffle"), std::string::npos);
}

TEST(OptimizeFlowGraphTest, MergesLinearIrChain) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("f1", FilterFn(0), OpClass::kFilter);
  VertexId b = g.AddIrVertex("f2", FilterFn(2), OpClass::kFilter);
  VertexId c = g.AddIrVertex("p", ProjectFn(), OpClass::kProject);
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());

  auto merged = OptimizeFlowGraph(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 2);
  EXPECT_EQ(g.vertices().size(), 1u);
  // Merged IR went through the standard pipeline: filters merged, then
  // filter+project fused => a single op.
  EXPECT_EQ(g.vertices()[0].ir->num_ops(), 1u);
}

TEST(OptimizeFlowGraphTest, ShuffleEdgesBlockMerging) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("f1", FilterFn(0));
  VertexId b = g.AddIrVertex("f2", FilterFn(2));
  ASSERT_TRUE(g.AddEdge(a, b, EdgeKind::kShuffle, {"x"}).ok());
  auto merged = OptimizeFlowGraph(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0);
  EXPECT_EQ(g.vertices().size(), 2u);
}

TEST(OptimizeFlowGraphTest, FanOutBlocksMerging) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("src", FilterFn(0));
  VertexId b = g.AddIrVertex("left", FilterFn(1));
  VertexId c = g.AddIrVertex("right", FilterFn(2));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(a, c).ok());
  auto merged = OptimizeFlowGraph(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0);
}

TEST(OptimizeFlowGraphTest, BuiltinVerticesNotMerged) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("ir", FilterFn(0));
  VertexId b = g.AddBuiltinVertex("handcrafted", "fn");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  auto merged = OptimizeFlowGraph(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0);
}

TEST(OptimizeFlowGraphTest, ConflictingParallelismHintsBlockMerging) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("f1", FilterFn(0));
  VertexId b = g.AddIrVertex("f2", FilterFn(1));
  g.vertex(a)->parallelism_hint = 2;
  g.vertex(b)->parallelism_hint = 4;
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  auto merged = OptimizeFlowGraph(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0);
}

TEST(OptimizeFlowGraphTest, PreservesSurroundingEdges) {
  FlowGraph g;
  VertexId a = g.AddIrVertex("f1", FilterFn(0));
  VertexId b = g.AddIrVertex("f2", FilterFn(1));
  VertexId c = g.AddIrVertex("agg", FilterFn(2));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c, EdgeKind::kShuffle, {"x"}).ok());
  auto merged = OptimizeFlowGraph(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 1);
  ASSERT_EQ(g.vertices().size(), 2u);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].kind, EdgeKind::kShuffle);
}

}  // namespace
}  // namespace skadi
