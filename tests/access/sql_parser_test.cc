#include "src/access/sql_ast.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(SqlParserTest, SelectStar) {
  auto s = SqlParse("SELECT * FROM sales");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->select_star);
  EXPECT_EQ(s->table, "sales");
  EXPECT_EQ(s->where, nullptr);
  EXPECT_FALSE(s->limit.has_value());
}

TEST(SqlParserTest, ProjectionWithAliases) {
  auto s = SqlParse("SELECT region, amount * price AS total FROM sales");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->items.size(), 2u);
  EXPECT_EQ(s->items[0].alias, "region");
  EXPECT_EQ(s->items[1].alias, "total");
  EXPECT_EQ(s->items[1].expr->ToString(), "(amount * price)");
}

TEST(SqlParserTest, WhereWithPrecedence) {
  auto s = SqlParse("SELECT * FROM t WHERE a > 1 AND b < 2 OR c = 3");
  ASSERT_TRUE(s.ok());
  // OR binds loosest: ((a>1 AND b<2) OR c=3).
  EXPECT_EQ(s->where->ToString(), "(((a > 1) AND (b < 2)) OR (c = 3))");
}

TEST(SqlParserTest, NotAndParens) {
  auto s = SqlParse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->ToString(), "NOT (((a = 1) OR (b = 2)))");
}

TEST(SqlParserTest, Aggregates) {
  auto s = SqlParse(
      "SELECT region, COUNT(*), SUM(amount), AVG(price) AS ap FROM sales GROUP BY region");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->items.size(), 4u);
  EXPECT_FALSE(s->items[0].aggregate.has_value());
  EXPECT_EQ(s->items[1].aggregate, AggKind::kCount);
  EXPECT_EQ(s->items[1].alias, "count");
  EXPECT_EQ(s->items[2].aggregate, AggKind::kSum);
  EXPECT_EQ(s->items[2].alias, "sum_amount");
  EXPECT_EQ(s->items[3].aggregate, AggKind::kMean);
  EXPECT_EQ(s->items[3].alias, "ap");
  ASSERT_EQ(s->group_by.size(), 1u);
  EXPECT_EQ(s->group_by[0], "region");
  EXPECT_TRUE(s->has_aggregates());
}

TEST(SqlParserTest, AggregateOverExpression) {
  auto s = SqlParse("SELECT SUM(amount * price) AS revenue FROM sales");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->items[0].aggregate, AggKind::kSum);
  EXPECT_EQ(s->items[0].expr->ToString(), "(amount * price)");
}

TEST(SqlParserTest, Join) {
  auto s = SqlParse("SELECT * FROM sales JOIN regions ON region = name");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->join.has_value());
  EXPECT_EQ(s->join->table, "regions");
  EXPECT_EQ(s->join->left_key, "region");
  EXPECT_EQ(s->join->right_key, "name");
}

TEST(SqlParserTest, InnerJoinKeywordAccepted) {
  auto s = SqlParse("SELECT * FROM a INNER JOIN b ON x = y");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->join.has_value());
}

TEST(SqlParserTest, OrderByAndLimit) {
  auto s = SqlParse("SELECT * FROM t ORDER BY a DESC, b LIMIT 10");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_EQ(s->order_by[0].column, "a");
  EXPECT_FALSE(s->order_by[0].ascending);
  EXPECT_TRUE(s->order_by[1].ascending);
  EXPECT_EQ(s->limit, 10);
}

TEST(SqlParserTest, Having) {
  auto s = SqlParse(
      "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING s > 100");
  ASSERT_TRUE(s.ok());
  ASSERT_NE(s->having, nullptr);
  EXPECT_EQ(s->having->ToString(), "(s > 100)");
}

TEST(SqlParserTest, StringAndBoolLiterals) {
  auto s = SqlParse("SELECT * FROM t WHERE name = 'east' AND active = TRUE");
  ASSERT_TRUE(s.ok());
  EXPECT_NE(s->where->ToString().find("'east'"), std::string::npos);
  EXPECT_NE(s->where->ToString().find("true"), std::string::npos);
}

TEST(SqlParserTest, UnaryMinus) {
  auto s = SqlParse("SELECT * FROM t WHERE a > -5");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->where->ToString(), "(a > (0 - 5))");
}

TEST(SqlParserTest, ErrorsArePositioned) {
  auto s = SqlParse("SELECT FROM t");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("position"), std::string::npos);
}

TEST(SqlParserTest, MissingFromRejected) {
  EXPECT_FALSE(SqlParse("SELECT a").ok());
}

TEST(SqlParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(SqlParse("SELECT * FROM t garbage here").ok());
}

TEST(SqlParserTest, MissingLimitValueRejected) {
  EXPECT_FALSE(SqlParse("SELECT * FROM t LIMIT").ok());
}

}  // namespace
}  // namespace skadi
