#include "src/access/sql_planner.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

Result<SqlPlan> Plan(const std::string& query, int parallelism = 2) {
  auto select = SqlParse(query);
  if (!select.ok()) {
    return select.status();
  }
  SqlPlannerOptions options;
  options.parallelism = parallelism;
  return PlanSql(*select, options);
}

TEST(SqlPlannerTest, SimpleSelectIsOneVertex) {
  auto plan = Plan("SELECT a FROM t WHERE a > 1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graph.vertices().size(), 1u);
  EXPECT_EQ(plan->table_sources.at("t"), plan->output_vertex);
  EXPECT_EQ(plan->graph.vertex(plan->output_vertex)->parallelism_hint, 2);
}

TEST(SqlPlannerTest, OrderByAddsGatherVertex) {
  auto plan = Plan("SELECT a FROM t ORDER BY a LIMIT 3");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graph.vertices().size(), 2u);
  const FlowVertex* gather = plan->graph.vertex(plan->output_vertex);
  EXPECT_EQ(gather->name, "gather");
  EXPECT_EQ(gather->parallelism_hint, 1);
  ASSERT_EQ(plan->graph.edges().size(), 1u);
  EXPECT_EQ(plan->graph.edges()[0].kind, EdgeKind::kBroadcast);
}

TEST(SqlPlannerTest, GroupByBuildsPartialShuffleFinal) {
  auto plan = Plan("SELECT g, SUM(v) AS s FROM t GROUP BY g");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->graph.vertices().size(), 2u);
  ASSERT_EQ(plan->graph.edges().size(), 1u);
  const FlowEdge& e = plan->graph.edges()[0];
  EXPECT_EQ(e.kind, EdgeKind::kShuffle);
  ASSERT_EQ(e.keys.size(), 1u);
  EXPECT_EQ(e.keys[0], "g");
}

TEST(SqlPlannerTest, GlobalAggregateBroadcastsToSingleFinal) {
  auto plan = Plan("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->graph.edges().size(), 1u);
  EXPECT_EQ(plan->graph.edges()[0].kind, EdgeKind::kBroadcast);
  EXPECT_EQ(plan->graph.vertex(plan->output_vertex)->parallelism_hint, 1);
}

TEST(SqlPlannerTest, JoinPlanHasBroadcastRightSide) {
  auto plan = Plan("SELECT * FROM facts JOIN dims ON k = k2");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graph.vertices().size(), 3u);
  EXPECT_EQ(plan->table_sources.size(), 2u);
  int broadcasts = 0;
  int forwards = 0;
  for (const FlowEdge& e : plan->graph.edges()) {
    broadcasts += e.kind == EdgeKind::kBroadcast ? 1 : 0;
    forwards += e.kind == EdgeKind::kForward ? 1 : 0;
  }
  EXPECT_EQ(broadcasts, 1);
  EXPECT_EQ(forwards, 1);
  // Right (dim) side is single-shard for the broadcast.
  EXPECT_EQ(plan->graph.vertex(plan->table_sources.at("dims"))->parallelism_hint, 1);
}

TEST(SqlPlannerTest, JoinWithAggregation) {
  auto plan = Plan(
      "SELECT g, SUM(v) AS s FROM facts JOIN dims ON k = k2 GROUP BY g ORDER BY s DESC");
  ASSERT_TRUE(plan.ok());
  // scanL + scanR + partial + final + gather.
  EXPECT_EQ(plan->graph.vertices().size(), 5u);
}

TEST(SqlPlannerTest, NonGroupColumnRejected) {
  auto plan = Plan("SELECT v, SUM(v) AS s FROM t GROUP BY g");
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(SqlPlannerTest, HavingWithoutAggregatesRejected) {
  auto plan = Plan("SELECT a FROM t HAVING a > 1");
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(SqlPlannerTest, StarWithAggregatesRejected) {
  // COUNT(*) forces aggregate mode; the parser sees '*' select first.
  auto select = SqlParse("SELECT * FROM t GROUP BY g");
  ASSERT_TRUE(select.ok());
  // Star without aggregates but with GROUP BY: planner treats as simple
  // select (no aggregates) — just verify it doesn't crash.
  EXPECT_TRUE(PlanSql(*select).ok());
}

TEST(SqlPlannerTest, ParallelismRespected) {
  auto plan = Plan("SELECT g, SUM(v) AS s FROM t GROUP BY g", 4);
  ASSERT_TRUE(plan.ok());
  for (const FlowVertex& v : plan->graph.vertices()) {
    EXPECT_EQ(v.parallelism_hint, 4);
  }
}

}  // namespace
}  // namespace skadi
