#include "src/access/ml.h"

#include <gtest/gtest.h>

#include "src/format/serde.h"
#include "src/ir/interp.h"

namespace skadi {
namespace {

// --- Gradient/loss IR correctness against analytic values ---

TEST(GradientIrTest, LinearGradientMatchesAnalytic) {
  // X = [[1, 2], [3, 4]], y = [[1], [2]], W = [[0.5], [0.5]].
  // pred = XW = [[1.5], [3.5]]; err = [[0.5], [1.5]];
  // grad = X^T err = [[1*0.5 + 3*1.5], [2*0.5 + 4*1.5]] = [[5], [7]].
  auto fn = BuildGradientIr(/*logistic=*/false);
  auto x = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto y = Tensor::FromData({2, 1}, {1, 2});
  auto w = Tensor::FromData({2, 1}, {0.5, 0.5});
  auto out = EvalIrFunction(*fn, {*x, *y, *w});
  ASSERT_TRUE(out.ok());
  const Tensor& grad = std::get<Tensor>((*out)[0]);
  EXPECT_NEAR(grad.At(0, 0), 5.0, 1e-12);
  EXPECT_NEAR(grad.At(1, 0), 7.0, 1e-12);
}

TEST(GradientIrTest, LogisticGradientUsesSigmoid) {
  // With W = 0: sigmoid(0) = 0.5 regardless of X.
  auto fn = BuildGradientIr(/*logistic=*/true);
  auto x = Tensor::FromData({2, 2}, {1, 0, 0, 1});
  auto y = Tensor::FromData({2, 1}, {1, 0});
  Tensor w = Tensor::Zeros({2, 1});
  auto out = EvalIrFunction(*fn, {*x, *y, w});
  ASSERT_TRUE(out.ok());
  const Tensor& grad = std::get<Tensor>((*out)[0]);
  // err = [0.5-1, 0.5-0] = [-0.5, 0.5]; grad = X^T err = [-0.5, 0.5].
  EXPECT_NEAR(grad.At(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(grad.At(1, 0), 0.5, 1e-12);
}

TEST(LossIrTest, MseMatchesAnalytic) {
  auto fn = BuildLossIr(/*logistic=*/false);
  auto x = Tensor::FromData({2, 1}, {1, 2});
  auto y = Tensor::FromData({2, 1}, {2, 2});
  auto w = Tensor::FromData({1, 1}, {1.0});
  // pred = [1, 2]; err = [-1, 0]; mse = (1 + 0)/2 = 0.5.
  auto out = EvalIrFunction(*fn, {*x, *y, *w});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(std::get<double>((*out)[0]), 0.5, 1e-12);
}

// --- Distributed training ---

class MlTrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 2;
    cluster_ = Cluster::Create(config);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_);
  }

  // Shards with y = 2x + 1 (x is the single feature; second column is bias).
  std::vector<std::pair<ObjectRef, ObjectRef>> MakeShards(int num_shards,
                                                          int rows_per_shard) {
    Rng rng(13);
    std::vector<std::pair<ObjectRef, ObjectRef>> shards;
    for (int s = 0; s < num_shards; ++s) {
      Tensor x = Tensor::Zeros({rows_per_shard, 2});
      Tensor y = Tensor::Zeros({rows_per_shard, 1});
      for (int r = 0; r < rows_per_shard; ++r) {
        double v = rng.NextDouble() * 2 - 1;
        x.Set(r, 0, v);
        x.Set(r, 1, 1.0);
        y.Set(r, 0, 2 * v + 1);
      }
      auto x_ref = runtime_->Put(SerializeTensor(x));
      auto y_ref = runtime_->Put(SerializeTensor(y));
      shards.emplace_back(*x_ref, *y_ref);
    }
    return shards;
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(MlTrainTest, ConvergesToTrueWeights) {
  MlTrainOptions options;
  options.epochs = 150;
  options.learning_rate = 0.5;
  auto model = TrainModel(runtime_.get(), &registry_, MakeShards(4, 64), 2, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_NEAR(model->weights.At(0, 0), 2.0, 0.05);
  EXPECT_NEAR(model->weights.At(1, 0), 1.0, 0.05);
  EXPECT_LT(model->loss_curve.back(), 0.01);
}

TEST_F(MlTrainTest, LossCurveMonotoneUnderSmallLr) {
  MlTrainOptions options;
  options.epochs = 30;
  options.learning_rate = 0.1;
  auto model = TrainModel(runtime_.get(), &registry_, MakeShards(2, 64), 2, options);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->loss_curve.size(); ++i) {
    EXPECT_LE(model->loss_curve[i], model->loss_curve[i - 1] + 1e-9) << "epoch " << i;
  }
}

TEST_F(MlTrainTest, GangPerEpochStillConverges) {
  MlTrainOptions options;
  options.epochs = 60;
  options.learning_rate = 0.5;
  options.gang_per_epoch = true;
  auto model = TrainModel(runtime_.get(), &registry_, MakeShards(3, 32), 2, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_NEAR(model->weights.At(0, 0), 2.0, 0.2);
  EXPECT_GT(runtime_->metrics().GetCounter("scheduler.gangs_dispatched").value(), 0);
}

TEST_F(MlTrainTest, SingleShardEqualsMultiShard) {
  // Data-parallel gradient averaging must equal single-shard training on
  // the concatenated data (weights identical per epoch, deterministic).
  MlTrainOptions options;
  options.epochs = 10;
  options.learning_rate = 0.3;

  // Build identical data once, as 1 shard and as 2 shards.
  Rng rng(21);
  std::vector<double> xs, ys;
  for (int r = 0; r < 64; ++r) {
    double v = rng.NextDouble();
    xs.push_back(v);
    ys.push_back(2 * v + 1);
  }
  auto make_shard = [&](int from, int to) {
    Tensor x = Tensor::Zeros({to - from, 2});
    Tensor y = Tensor::Zeros({to - from, 1});
    for (int r = from; r < to; ++r) {
      x.Set(r - from, 0, xs[static_cast<size_t>(r)]);
      x.Set(r - from, 1, 1.0);
      y.Set(r - from, 0, ys[static_cast<size_t>(r)]);
    }
    return std::make_pair(*runtime_->Put(SerializeTensor(x)),
                          *runtime_->Put(SerializeTensor(y)));
  };

  std::vector<std::pair<ObjectRef, ObjectRef>> one = {make_shard(0, 64)};
  std::vector<std::pair<ObjectRef, ObjectRef>> two = {make_shard(0, 32),
                                                      make_shard(32, 64)};
  auto model1 = TrainModel(runtime_.get(), &registry_, one, 2, options);
  auto model2 = TrainModel(runtime_.get(), &registry_, two, 2, options);
  ASSERT_TRUE(model1.ok());
  ASSERT_TRUE(model2.ok());
  EXPECT_NEAR(model1->weights.At(0, 0), model2->weights.At(0, 0), 1e-9);
  EXPECT_NEAR(model1->weights.At(1, 0), model2->weights.At(1, 0), 1e-9);
}

TEST_F(MlTrainTest, ParameterServerMatchesDriverAveraging) {
  // Gradients in one epoch are all computed from the same weight snapshot,
  // so serial actor application sums to the same update as driver-side
  // averaging (up to float reassociation).
  MlTrainOptions driver_opts;
  driver_opts.epochs = 20;
  driver_opts.learning_rate = 0.4;
  MlTrainOptions ps_opts = driver_opts;
  ps_opts.parameter_server = true;

  auto shards = MakeShards(3, 32);
  auto driver_model = TrainModel(runtime_.get(), &registry_, shards, 2, driver_opts);
  auto ps_model = TrainModel(runtime_.get(), &registry_, shards, 2, ps_opts);
  ASSERT_TRUE(driver_model.ok());
  ASSERT_TRUE(ps_model.ok()) << ps_model.status().ToString();
  EXPECT_NEAR(driver_model->weights.At(0, 0), ps_model->weights.At(0, 0), 1e-9);
  EXPECT_NEAR(driver_model->weights.At(1, 0), ps_model->weights.At(1, 0), 1e-9);
}

TEST_F(MlTrainTest, ParameterServerConverges) {
  MlTrainOptions options;
  options.epochs = 120;
  options.learning_rate = 0.5;
  options.parameter_server = true;
  auto model = TrainModel(runtime_.get(), &registry_, MakeShards(4, 32), 2, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_NEAR(model->weights.At(0, 0), 2.0, 0.1);
  EXPECT_NEAR(model->weights.At(1, 0), 1.0, 0.1);
}

TEST_F(MlTrainTest, InvalidOptionsRejected) {
  MlTrainOptions bad;
  bad.epochs = 0;
  EXPECT_FALSE(TrainModel(runtime_.get(), &registry_, MakeShards(1, 8), 2, bad).ok());
  EXPECT_FALSE(TrainModel(runtime_.get(), &registry_, {}, 2, {}).ok());
}

TEST_F(MlTrainTest, LogisticSeparatesClasses) {
  // Points with x > 0 labelled 1, x < 0 labelled 0: logistic regression
  // must learn a positive weight.
  Rng rng(31);
  Tensor x = Tensor::Zeros({128, 2});
  Tensor y = Tensor::Zeros({128, 1});
  for (int r = 0; r < 128; ++r) {
    double v = rng.NextDouble() * 2 - 1;
    x.Set(r, 0, v);
    x.Set(r, 1, 1.0);
    y.Set(r, 0, v > 0 ? 1.0 : 0.0);
  }
  std::vector<std::pair<ObjectRef, ObjectRef>> shards = {
      {*runtime_->Put(SerializeTensor(x)), *runtime_->Put(SerializeTensor(y))}};
  MlTrainOptions options;
  options.epochs = 200;
  options.learning_rate = 2.0;
  options.logistic = true;
  auto model = TrainModel(runtime_.get(), &registry_, shards, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->weights.At(0, 0), 1.0);
  EXPECT_LT(model->loss_curve.back(), model->loss_curve.front());
}

}  // namespace
}  // namespace skadi
