#include "src/access/graph_analytics.h"

#include <map>

#include <gtest/gtest.h>

#include "src/format/serde.h"

namespace skadi {
namespace {

class GraphAnalyticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 2;
    cluster_ = Cluster::Create(config);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_);
  }

  std::vector<ObjectRef> PutEdges(const std::vector<std::pair<int64_t, int64_t>>& edges,
                                  int partitions = 2) {
    std::vector<ObjectRef> refs;
    size_t per = (edges.size() + static_cast<size_t>(partitions) - 1) /
                 static_cast<size_t>(partitions);
    for (int p = 0; p < partitions; ++p) {
      ColumnBuilder src(DataType::kInt64);
      ColumnBuilder dst(DataType::kInt64);
      for (size_t i = static_cast<size_t>(p) * per;
           i < std::min(edges.size(), (static_cast<size_t>(p) + 1) * per); ++i) {
        src.AppendInt64(edges[i].first);
        dst.AppendInt64(edges[i].second);
      }
      Schema schema({{"src", DataType::kInt64}, {"dst", DataType::kInt64}});
      auto batch = RecordBatch::Make(schema, {src.Finish(), dst.Finish()});
      refs.push_back(*runtime_->Put(SerializeBatchIpc(std::move(batch).value())));
    }
    return refs;
  }

  // Reference PageRank via straightforward power iteration.
  std::map<int64_t, double> ReferencePageRank(
      const std::vector<std::pair<int64_t, int64_t>>& edges, int iterations,
      double damping) {
    std::set<int64_t> vertex_set;
    std::map<int64_t, int64_t> degree;
    for (auto [s, d] : edges) {
      vertex_set.insert(s);
      vertex_set.insert(d);
      degree[s]++;
    }
    double n = static_cast<double>(vertex_set.size());
    std::map<int64_t, double> rank;
    for (int64_t v : vertex_set) {
      rank[v] = 1.0 / n;
    }
    for (int it = 0; it < iterations; ++it) {
      std::map<int64_t, double> next;
      for (int64_t v : vertex_set) {
        next[v] = (1.0 - damping) / n;
      }
      for (auto [s, d] : edges) {
        next[d] += damping * rank[s] / static_cast<double>(degree[s]);
      }
      rank = std::move(next);
    }
    return rank;
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(GraphAnalyticsTest, PageRankMatchesPowerIteration) {
  std::vector<std::pair<int64_t, int64_t>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 0}, {1, 3}, {4, 0}, {0, 4}};
  PageRankOptions options;
  options.iterations = 8;
  options.damping = 0.85;
  auto result = PageRank(runtime_.get(), &registry_, PutEdges(edges), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto reference = ReferencePageRank(edges, options.iterations, options.damping);
  ASSERT_EQ(result->num_rows(), static_cast<int64_t>(reference.size()));
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    int64_t v = result->ColumnByName("vertex")->Int64At(i);
    EXPECT_NEAR(result->ColumnByName("rank")->Float64At(i), reference[v], 1e-9)
        << "vertex " << v;
  }
}

TEST_F(GraphAnalyticsTest, PageRankRanksSumToOne) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    int64_t s = static_cast<int64_t>(rng.NextBounded(20));
    int64_t d = static_cast<int64_t>(rng.NextBounded(20));
    edges.emplace_back(s, d);
  }
  // Ensure no dangling vertices (every vertex has an out-edge).
  for (int64_t v = 0; v < 20; ++v) {
    edges.emplace_back(v, (v + 1) % 20);
  }
  auto result = PageRank(runtime_.get(), &registry_, PutEdges(edges), {});
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    sum += result->ColumnByName("rank")->Float64At(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(GraphAnalyticsTest, PageRankInvalidOptionsRejected) {
  auto refs = PutEdges({{0, 1}});
  PageRankOptions bad;
  bad.iterations = 0;
  EXPECT_FALSE(PageRank(runtime_.get(), &registry_, refs, bad).ok());
  bad.iterations = 5;
  bad.damping = 1.5;
  EXPECT_FALSE(PageRank(runtime_.get(), &registry_, refs, bad).ok());
}

TEST_F(GraphAnalyticsTest, PageRankEmptyGraphRejected) {
  std::vector<ObjectRef> refs = PutEdges({}, 1);
  EXPECT_FALSE(PageRank(runtime_.get(), &registry_, refs, {}).ok());
}

TEST_F(GraphAnalyticsTest, ConnectedComponentsChain) {
  // 0-1-2-3-4 chain: one component labelled 0.
  auto result = ConnectedComponents(runtime_.get(), &registry_,
                                    PutEdges({{0, 1}, {1, 2}, {2, 3}, {3, 4}}), {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 5);
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    EXPECT_EQ(result->ColumnByName("component")->Int64At(i), 0);
  }
}

TEST_F(GraphAnalyticsTest, ConnectedComponentsDirectionIgnored) {
  // Edges point "backwards": 5 <- 6 <- 7; still one component labelled 5.
  auto result = ConnectedComponents(runtime_.get(), &registry_,
                                    PutEdges({{6, 5}, {7, 6}}), {});
  ASSERT_TRUE(result.ok());
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    EXPECT_EQ(result->ColumnByName("component")->Int64At(i), 5);
  }
}

TEST_F(GraphAnalyticsTest, ConnectedComponentsManyIslands) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  // 5 islands of 4 vertices: {10k..10k+3}.
  for (int64_t island = 0; island < 5; ++island) {
    int64_t base = island * 10;
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base + 1, base + 2);
    edges.emplace_back(base + 2, base + 3);
  }
  auto result = ConnectedComponents(runtime_.get(), &registry_, PutEdges(edges), {});
  ASSERT_TRUE(result.ok());
  std::map<int64_t, std::set<int64_t>> members;
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    members[result->ColumnByName("component")->Int64At(i)].insert(
        result->ColumnByName("vertex")->Int64At(i));
  }
  ASSERT_EQ(members.size(), 5u);
  for (auto& [label, verts] : members) {
    EXPECT_EQ(verts.size(), 4u);
    EXPECT_EQ(*verts.begin(), label);  // component labelled by min vertex
  }
}

TEST_F(GraphAnalyticsTest, ConnectedComponentsConvergesEarly) {
  ConnectedComponentsOptions options;
  options.max_iterations = 50;  // chain of 4 converges in ~4 rounds
  auto result = ConnectedComponents(runtime_.get(), &registry_,
                                    PutEdges({{0, 1}, {1, 2}, {2, 3}}), options);
  ASSERT_TRUE(result.ok());
  // Convergence check: fewer tasks than 50 iterations would need.
  int64_t tasks = runtime_->metrics().GetCounter("runtime.tasks_submitted").value();
  EXPECT_LT(tasks, 300);
}

}  // namespace
}  // namespace skadi
