#include "src/access/sql_lexer.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(SqlLexerTest, KeywordsCaseInsensitive) {
  auto tokens = SqlLex("select FROM wHeRe");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // 3 + end
  EXPECT_EQ((*tokens)[0].type, SqlTokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
  EXPECT_EQ((*tokens)[3].type, SqlTokenType::kEnd);
}

TEST(SqlLexerTest, IdentifiersKeepCase) {
  auto tokens = SqlLex("MyTable my_col");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, SqlTokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "MyTable");
  EXPECT_EQ((*tokens)[1].text, "my_col");
}

TEST(SqlLexerTest, Numbers) {
  auto tokens = SqlLex("42 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, SqlTokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, SqlTokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.5);
}

TEST(SqlLexerTest, MalformedNumberRejected) {
  EXPECT_FALSE(SqlLex("1.2.3").ok());
}

TEST(SqlLexerTest, StringLiterals) {
  auto tokens = SqlLex("'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, SqlTokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
}

TEST(SqlLexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(SqlLex("'oops").ok());
}

TEST(SqlLexerTest, TwoCharSymbols) {
  auto tokens = SqlLex("<= >= != <>");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "!=");
  EXPECT_EQ((*tokens)[3].text, "!=");  // <> normalizes
}

TEST(SqlLexerTest, UnexpectedCharacterRejected) {
  auto r = SqlLex("SELECT #");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position 7"), std::string::npos);
}

TEST(SqlLexerTest, PositionsTracked) {
  auto tokens = SqlLex("SELECT x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 7u);
}

}  // namespace
}  // namespace skadi
