#include "src/access/mapreduce.h"

#include <gtest/gtest.h>

#include "src/format/serde.h"
#include "src/graph/executor.h"
#include "src/graph/physical.h"

namespace skadi {
namespace {

TEST(MapReduceGraphTest, StructureIsMapShuffleReduce) {
  MapReduceJob job;
  job.mapper = "m";
  job.reducer = "r";
  job.shuffle_keys = {"k"};
  job.map_parallelism = 3;
  job.reduce_parallelism = 2;
  auto mr = BuildMapReduceGraph(job);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mr->graph.vertices().size(), 2u);
  ASSERT_EQ(mr->graph.edges().size(), 1u);
  EXPECT_EQ(mr->graph.edges()[0].kind, EdgeKind::kShuffle);
  EXPECT_EQ(mr->graph.vertex(mr->map_vertex)->parallelism_hint, 3);
  EXPECT_EQ(mr->graph.vertex(mr->reduce_vertex)->parallelism_hint, 2);
}

TEST(MapReduceGraphTest, ValidationErrors) {
  MapReduceJob job;
  job.mapper = "";
  job.reducer = "r";
  job.shuffle_keys = {"k"};
  EXPECT_FALSE(BuildMapReduceGraph(job).ok());
  job.mapper = "m";
  job.shuffle_keys = {};
  EXPECT_FALSE(BuildMapReduceGraph(job).ok());
  job.shuffle_keys = {"k"};
  job.map_parallelism = 0;
  EXPECT_FALSE(BuildMapReduceGraph(job).ok());
}

class MapReduceExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.racks = 1;
    config.servers_per_rack = 3;
    cluster_ = Cluster::Create(config);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_);

    // Word-count style: mapper emits (word, 1), reducer sums per partition.
    ASSERT_TRUE(registry_.Register("mr.map", [](TaskContext&, std::vector<Buffer>& args)
                                     -> Result<std::vector<Buffer>> {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, DeserializeBatchIpc(args[0]));
      SKADI_ASSIGN_OR_RETURN(
          RecordBatch out,
          ProjectBatch(batch, {{Expr::Col("word"), "word"}, {Expr::Int(1), "one"}}));
      return std::vector<Buffer>{SerializeBatchIpc(out)};
    }).ok());
    ASSERT_TRUE(registry_.Register("mr.reduce", [](TaskContext&, std::vector<Buffer>& args)
                                        -> Result<std::vector<Buffer>> {
      SKADI_ASSIGN_OR_RETURN(RecordBatch batch, DeserializeBatchIpc(args[0]));
      SKADI_ASSIGN_OR_RETURN(
          RecordBatch out,
          GroupAggregateBatch(batch, {"word"}, {{AggKind::kSum, "one", "count"}}));
      return std::vector<Buffer>{SerializeBatchIpc(out)};
    }).ok());
  }

  ObjectRef PutWords(const std::vector<std::string>& words) {
    ColumnBuilder col(DataType::kString);
    for (const std::string& w : words) {
      col.AppendString(w);
    }
    Schema schema({{"word", DataType::kString}});
    auto batch = RecordBatch::Make(schema, {col.Finish()});
    return *runtime_->Put(SerializeBatchIpc(std::move(batch).value()));
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(MapReduceExecTest, WordCountEndToEnd) {
  MapReduceJob job;
  job.mapper = "mr.map";
  job.reducer = "mr.reduce";
  job.shuffle_keys = {"word"};
  job.map_parallelism = 2;
  job.reduce_parallelism = 2;
  auto mr = BuildMapReduceGraph(job);
  ASSERT_TRUE(mr.ok());

  LoweringOptions lowering;
  auto physical = LowerToPhysical(mr->graph, lowering, &registry_);
  ASSERT_TRUE(physical.ok());

  std::vector<ObjectRef> inputs = {
      PutWords({"ray", "skadi", "ray", "dpu"}),
      PutWords({"skadi", "skadi", "fpga", "ray"}),
  };
  GraphExecutor executor(runtime_.get());
  auto run = executor.RunToCompletion(*physical, {{mr->map_vertex, inputs}});
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::map<std::string, int64_t> counts;
  for (const ObjectRef& ref : run->sink_outputs.at(mr->reduce_vertex)) {
    auto buffer = runtime_->Get(ref);
    ASSERT_TRUE(buffer.ok());
    auto batch = DeserializeBatchIpc(*buffer);
    ASSERT_TRUE(batch.ok());
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      counts[std::string(batch->column(0).StringAt(i))] +=
          batch->ColumnByName("count")->Int64At(i);
    }
  }
  EXPECT_EQ(counts["ray"], 3);
  EXPECT_EQ(counts["skadi"], 3);
  EXPECT_EQ(counts["dpu"], 1);
  EXPECT_EQ(counts["fpga"], 1);
  EXPECT_EQ(counts.size(), 4u);

  // Each word was reduced in exactly one partition (shuffle correctness):
  // the per-word totals above already prove it since no word was split.
  EXPECT_GT(run->shuffle_tasks, 0);
}

}  // namespace
}  // namespace skadi
