#include "src/access/streaming.h"

#include <gtest/gtest.h>

#include "src/ir/dialects.h"

namespace skadi {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 2;
    cluster_ = Cluster::Create(config);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_);
  }

  RecordBatch MicroBatch(const std::vector<std::pair<int64_t, double>>& rows) {
    ColumnBuilder keys(DataType::kInt64);
    ColumnBuilder values(DataType::kFloat64);
    for (auto [k, v] : rows) {
      keys.AppendInt64(k);
      values.AppendFloat64(v);
    }
    Schema schema({{"key", DataType::kInt64}, {"value", DataType::kFloat64}});
    auto batch = RecordBatch::Make(schema, {keys.Finish(), values.Finish()});
    return std::move(batch).value();
  }

  std::map<int64_t, std::pair<double, int64_t>> SnapshotMap(StreamingJob& job) {
    auto snapshot = job.Snapshot();
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    std::map<int64_t, std::pair<double, int64_t>> out;
    for (int64_t i = 0; i < snapshot->num_rows(); ++i) {
      out[snapshot->ColumnByName("key")->Int64At(i)] = {
          snapshot->ColumnByName("sum")->Float64At(i),
          snapshot->ColumnByName("count")->Int64At(i)};
    }
    return out;
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(StreamingTest, RunningAggregatesAccumulateAcrossBatches) {
  auto job = StreamingJob::Start(runtime_.get(), &registry_, nullptr);
  ASSERT_TRUE(job.ok()) << job.status().ToString();

  ASSERT_TRUE((*job)->PushBatch(MicroBatch({{1, 10.0}, {2, 5.0}, {1, 2.0}})).ok());
  ASSERT_TRUE((*job)->PushBatch(MicroBatch({{2, 5.0}, {3, 1.0}})).ok());
  EXPECT_EQ((*job)->batches_processed(), 2);

  auto state = SnapshotMap(**job);
  ASSERT_EQ(state.size(), 3u);
  EXPECT_DOUBLE_EQ(state[1].first, 12.0);
  EXPECT_EQ(state[1].second, 2);
  EXPECT_DOUBLE_EQ(state[2].first, 10.0);
  EXPECT_EQ(state[2].second, 2);
  EXPECT_DOUBLE_EQ(state[3].first, 1.0);
}

TEST_F(StreamingTest, SnapshotMatchesBatchReference) {
  // Many random micro-batches: the streaming state must equal a batch
  // group-by over the concatenation.
  auto job = StreamingJob::Start(runtime_.get(), &registry_, nullptr);
  ASSERT_TRUE(job.ok());

  Rng rng(77);
  std::map<int64_t, std::pair<double, int64_t>> reference;
  for (int b = 0; b < 10; ++b) {
    std::vector<std::pair<int64_t, double>> rows;
    for (int r = 0; r < 50; ++r) {
      int64_t k = static_cast<int64_t>(rng.NextBounded(8));
      double v = rng.NextDouble();
      rows.emplace_back(k, v);
      reference[k].first += v;
      reference[k].second += 1;
    }
    ASSERT_TRUE((*job)->PushBatch(MicroBatch(rows)).ok());
  }

  auto state = SnapshotMap(**job);
  ASSERT_EQ(state.size(), reference.size());
  for (const auto& [k, agg] : reference) {
    EXPECT_NEAR(state[k].first, agg.first, 1e-9) << "key " << k;
    EXPECT_EQ(state[k].second, agg.second) << "key " << k;
  }
}

TEST_F(StreamingTest, TransformAppliesBeforeStateUpdate) {
  // Transform doubles the value and filters out key 0.
  auto transform = std::make_shared<IrFunction>("xf");
  ValueId t = transform->AddParam(IrType::Table());
  ValueId filtered = EmitFilter(
      *transform, t, Expr::Binary(BinaryOp::kNe, Expr::Col("key"), Expr::Int(0)));
  ValueId projected = EmitProject(
      *transform, filtered,
      {{Expr::Col("key"), "key"},
       {Expr::Binary(BinaryOp::kMul, Expr::Col("value"), Expr::Float(2.0)), "value"}});
  transform->SetReturns({projected});

  auto job = StreamingJob::Start(runtime_.get(), &registry_, transform);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->PushBatch(MicroBatch({{0, 100.0}, {1, 3.0}})).ok());

  auto state = SnapshotMap(**job);
  ASSERT_EQ(state.size(), 1u);  // key 0 filtered out
  EXPECT_DOUBLE_EQ(state[1].first, 6.0);
}

TEST_F(StreamingTest, PartitionsSplitKeysDisjointly) {
  StreamingOptions options;
  options.parallelism = 4;
  auto job = StreamingJob::Start(runtime_.get(), &registry_, nullptr, options);
  ASSERT_TRUE(job.ok());
  std::vector<std::pair<int64_t, double>> rows;
  for (int64_t k = 0; k < 32; ++k) {
    rows.emplace_back(k, 1.0);
  }
  ASSERT_TRUE((*job)->PushBatch(MicroBatch(rows)).ok());
  auto state = SnapshotMap(**job);
  // Every key present exactly once across the 4 partition snapshots.
  EXPECT_EQ(state.size(), 32u);
  for (auto& [k, agg] : state) {
    EXPECT_EQ(agg.second, 1);
  }
}

TEST_F(StreamingTest, EmptySnapshotBeforeData) {
  auto job = StreamingJob::Start(runtime_.get(), &registry_, nullptr);
  ASSERT_TRUE(job.ok());
  auto snapshot = (*job)->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_rows(), 0);
}

TEST_F(StreamingTest, InvalidOptionsRejected) {
  StreamingOptions bad;
  bad.parallelism = 0;
  EXPECT_FALSE(StreamingJob::Start(runtime_.get(), &registry_, nullptr, bad).ok());
}

TEST_F(StreamingTest, MissingKeyColumnFailsBatch) {
  auto job = StreamingJob::Start(runtime_.get(), &registry_, nullptr);
  ASSERT_TRUE(job.ok());
  Schema schema({{"other", DataType::kInt64}});
  auto bad = RecordBatch::Make(schema, {Column::MakeInt64({1})});
  EXPECT_FALSE((*job)->PushBatch(std::move(bad).value()).ok());
}

}  // namespace
}  // namespace skadi
