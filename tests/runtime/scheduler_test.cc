// Unit tests of the centralized scheduler's placement policies and gang
// logic, using a fake dispatch function that records targets.
#include "src/runtime/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "src/common/clock.h"
#include "src/common/event.h"

namespace skadi {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : topo_(std::make_shared<Topology>()) {
    for (int i = 0; i < 4; ++i) {
      NodeInfo info;
      info.id = NodeId::Next();
      info.role = NodeRole::kServer;
      info.rack = i / 2;
      EXPECT_TRUE(topo_->AddNode(info).ok());
      node_ids_.push_back(info.id);
    }
    fabric_ = std::make_unique<Fabric>(topo_);
    cache_ = std::make_unique<CachingLayer>(fabric_.get());
    for (NodeId n : node_ids_) {
      cache_->RegisterStore(n, std::make_shared<LocalObjectStore>(DeviceId::Next(),
                                                                  1LL << 30));
    }
  }

  std::unique_ptr<Scheduler> MakeScheduler(SchedulingPolicy policy,
                                           DeviceKind kind = DeviceKind::kCpu,
                                           int workers = 2) {
    auto scheduler = std::make_unique<Scheduler>(
        cache_.get(), &metrics_, policy,
        [this](const TaskSpec& spec, NodeId target) {
          dispatched_.emplace_back(spec.id, target);
          return dispatch_result_;
        });
    std::vector<SchedulableNode> nodes;
    for (NodeId n : node_ids_) {
      nodes.push_back(SchedulableNode{n, kind, NodeId(), workers});
    }
    scheduler->SetNodes(std::move(nodes));
    return scheduler;
  }

  TaskSpec MakeTask(std::vector<TaskArg> args = {}) {
    TaskSpec spec;
    spec.id = TaskId::Next();
    spec.function = "f";
    spec.args = std::move(args);
    return spec;
  }

  std::shared_ptr<Topology> topo_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<CachingLayer> cache_;
  MetricsRegistry metrics_;
  std::vector<NodeId> node_ids_;
  std::vector<std::pair<TaskId, NodeId>> dispatched_;
  Status dispatch_result_ = Status::Ok();
};

TEST_F(SchedulerTest, RoundRobinCycles) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  }
  ASSERT_EQ(dispatched_.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(dispatched_[static_cast<size_t>(i)].second,
              node_ids_[static_cast<size_t>(i) % 4]);
  }
}

TEST_F(SchedulerTest, LoadAwarePicksIdleNode) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kLoadAware);
  // Three tasks: all different nodes (load rises as tasks stay in flight).
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  std::set<NodeId> targets;
  for (auto& [task, node] : dispatched_) {
    targets.insert(node);
  }
  EXPECT_EQ(targets.size(), 3u);
}

TEST_F(SchedulerTest, LoadRebalancesAfterFinish) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kLoadAware);
  TaskSpec first = MakeTask();
  TaskId first_id = first.id;
  ASSERT_TRUE(scheduler->Submit(std::move(first)).ok());
  NodeId first_node = dispatched_[0].second;
  scheduler->OnTaskFinished(first_id);
  EXPECT_EQ(scheduler->inflight_on(first_node), 0);
}

TEST_F(SchedulerTest, LocalityFollowsBytes) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kLocalityAware);
  // Put a big object on node 2, small on node 0.
  ObjectId big = ObjectId::Next();
  ObjectId small = ObjectId::Next();
  ASSERT_TRUE(cache_->Put(big, Buffer::Zeros(1024 * 1024), node_ids_[2]).ok());
  ASSERT_TRUE(cache_->Put(small, Buffer::Zeros(64), node_ids_[0]).ok());
  scheduler->MarkObjectReady(big);
  scheduler->MarkObjectReady(small);

  ASSERT_TRUE(scheduler->Submit(MakeTask({TaskArg::Ref({big, NodeId()}),
                              TaskArg::Ref({small, NodeId()})})).ok());
  ASSERT_EQ(dispatched_.size(), 1u);
  EXPECT_EQ(dispatched_[0].second, node_ids_[2]);
}

TEST_F(SchedulerTest, PinnedNodeOverridesPolicy) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  TaskSpec spec = MakeTask();
  spec.pinned_node = node_ids_[3];
  ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
  EXPECT_EQ(dispatched_[0].second, node_ids_[3]);
}

TEST_F(SchedulerTest, RequiredDeviceFiltersCandidates) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin, DeviceKind::kCpu);
  TaskSpec spec = MakeTask();
  spec.required_device = DeviceKind::kGpu;  // nothing matches
  ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
  EXPECT_TRUE(dispatched_.empty());
  EXPECT_EQ(metrics_.GetCounter("scheduler.unschedulable").value(), 1);
}

TEST_F(SchedulerTest, ParksUntilDependencyReady) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  ObjectId dep = ObjectId::Next();
  ASSERT_TRUE(scheduler->Submit(MakeTask({TaskArg::Ref({dep, NodeId()})})).ok());
  EXPECT_TRUE(dispatched_.empty());
  EXPECT_EQ(scheduler->pending_tasks(), 1u);
  scheduler->OnObjectReady(dep);
  EXPECT_EQ(dispatched_.size(), 1u);
  EXPECT_EQ(scheduler->pending_tasks(), 0u);
}

TEST_F(SchedulerTest, MultiDepTaskWaitsForAll) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  ObjectId a = ObjectId::Next();
  ObjectId b = ObjectId::Next();
  ASSERT_TRUE(scheduler->Submit(
      MakeTask({TaskArg::Ref({a, NodeId()}), TaskArg::Ref({b, NodeId()})})).ok());
  scheduler->OnObjectReady(a);
  EXPECT_TRUE(dispatched_.empty());
  scheduler->OnObjectReady(b);
  EXPECT_EQ(dispatched_.size(), 1u);
}

TEST_F(SchedulerTest, GangHeldUntilComplete) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec = MakeTask();
    spec.gang_group = "g";
    spec.gang_size = 4;
    ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
    EXPECT_TRUE(dispatched_.empty());
  }
  TaskSpec last = MakeTask();
  last.gang_group = "g";
  last.gang_size = 4;
  ASSERT_TRUE(scheduler->Submit(std::move(last)).ok());
  EXPECT_EQ(dispatched_.size(), 4u);
  EXPECT_EQ(metrics_.GetCounter("scheduler.gangs_dispatched").value(), 1);
}

TEST_F(SchedulerTest, GangWaitsForSlots) {
  // 4 nodes x 1 worker = 4 slots; occupy 2, gang of 4 must wait.
  auto scheduler = MakeScheduler(SchedulingPolicy::kLoadAware, DeviceKind::kCpu, 1);
  TaskSpec f1 = MakeTask();
  TaskSpec f2 = MakeTask();
  TaskId f1_id = f1.id;
  TaskId f2_id = f2.id;
  ASSERT_TRUE(scheduler->Submit(std::move(f1)).ok());
  ASSERT_TRUE(scheduler->Submit(std::move(f2)).ok());
  dispatched_.clear();

  for (int i = 0; i < 4; ++i) {
    TaskSpec spec = MakeTask();
    spec.gang_group = "spmd";
    spec.gang_size = 4;
    ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
  }
  EXPECT_TRUE(dispatched_.empty());  // only 2 free slots

  scheduler->OnTaskFinished(f1_id);
  EXPECT_TRUE(dispatched_.empty());  // 3 free: still short
  scheduler->OnTaskFinished(f2_id);
  EXPECT_EQ(dispatched_.size(), 4u);  // all-or-nothing release
}

TEST_F(SchedulerTest, TwoGangsDispatchIndependently) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  for (const char* group : {"g1", "g2"}) {
    for (int i = 0; i < 2; ++i) {
      TaskSpec spec = MakeTask();
      spec.gang_group = group;
      spec.gang_size = 2;
      ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
    }
  }
  EXPECT_EQ(dispatched_.size(), 4u);
  EXPECT_EQ(metrics_.GetCounter("scheduler.gangs_dispatched").value(), 2);
}

TEST_F(SchedulerTest, NodeFailureRedispatchesInflight) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  ASSERT_EQ(dispatched_.size(), 1u);
  NodeId victim = dispatched_[0].second;
  dispatched_.clear();
  scheduler->OnNodeFailure(victim);
  ASSERT_EQ(dispatched_.size(), 1u);
  EXPECT_NE(dispatched_[0].second, victim);
}

TEST_F(SchedulerTest, DispatchFailureRetriesElsewhere) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  // First dispatch attempt fails; scheduler must drop the node and retry.
  int calls = 0;
  auto failing = std::make_unique<Scheduler>(
      cache_.get(), &metrics_, SchedulingPolicy::kRoundRobin,
      [this, &calls](const TaskSpec& spec, NodeId target) -> Status {
        ++calls;
        if (calls == 1) {
          return Status::Unavailable("node died");
        }
        dispatched_.emplace_back(spec.id, target);
        return Status::Ok();
      });
  std::vector<SchedulableNode> nodes;
  for (NodeId n : node_ids_) {
    nodes.push_back(SchedulableNode{n, DeviceKind::kCpu, NodeId(), 2});
  }
  failing->SetNodes(std::move(nodes));
  ASSERT_TRUE(failing->Submit(MakeTask()).ok());
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(dispatched_.size(), 1u);
}

TEST_F(SchedulerTest, PolicySwitchAtRuntime) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  EXPECT_EQ(scheduler->policy(), SchedulingPolicy::kRoundRobin);
  scheduler->SetPolicy(SchedulingPolicy::kRandom);
  EXPECT_EQ(scheduler->policy(), SchedulingPolicy::kRandom);
}

TEST_F(SchedulerTest, PolicyNamesResolve) {
  EXPECT_EQ(SchedulingPolicyName(SchedulingPolicy::kLocalityAware), "locality_aware");
  EXPECT_EQ(SchedulingPolicyName(SchedulingPolicy::kRandom), "random");
}

TEST_F(SchedulerTest, SingleShardBaselineBehavesIdentically) {
  // SchedulerOptions{1} is the single-lock degenerate config the control
  // plane bench compares against; placement semantics must not change.
  auto scheduler = std::make_unique<Scheduler>(
      cache_.get(), &metrics_, SchedulingPolicy::kRoundRobin,
      [this](const TaskSpec& spec, NodeId target) {
        dispatched_.emplace_back(spec.id, target);
        return Status::Ok();
      },
      /*seed=*/17, SchedulerOptions{1});
  std::vector<SchedulableNode> nodes;
  for (NodeId n : node_ids_) {
    nodes.push_back(SchedulableNode{n, DeviceKind::kCpu, NodeId(), 2});
  }
  scheduler->SetNodes(std::move(nodes));
  ObjectId dep = ObjectId::Next();
  ASSERT_TRUE(scheduler->Submit(MakeTask({TaskArg::Ref(ObjectRef{dep, NodeId()})})).ok());
  EXPECT_EQ(scheduler->pending_tasks(), 1u);
  scheduler->OnObjectReady(dep);
  EXPECT_EQ(scheduler->pending_tasks(), 0u);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  }
  ASSERT_EQ(dispatched_.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dispatched_[i].second, node_ids_[i % 4]);
  }
}

TEST_F(SchedulerTest, IdleNodeStealsFromLongestQueue) {
  // Dispatches to node A block until released, so tasks pile up in A's queue
  // behind the blocked pumper. Finishing a task on B leaves B idle; B must
  // steal the newest queued task off A instead of waiting for A to unwedge.
  const NodeId a = node_ids_[0];
  const NodeId b = node_ids_[1];
  Event entered, release;
  std::atomic<bool> blocking{true};
  Mutex mu;
  std::vector<std::pair<TaskId, NodeId>> calls;
  auto scheduler = std::make_unique<Scheduler>(
      cache_.get(), &metrics_, SchedulingPolicy::kRoundRobin,
      [&](const TaskSpec& spec, NodeId target) {
        {
          MutexLock lock(mu);
          calls.emplace_back(spec.id, target);
        }
        if (target == a && blocking.load()) {
          entered.Set();
          release.BlockingWait();
        }
        return Status::Ok();
      });
  scheduler->SetNodes({SchedulableNode{a, DeviceKind::kCpu, NodeId(), 2},
                       SchedulableNode{b, DeviceKind::kCpu, NodeId(), 2}});

  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(MakeTask());
  }
  const std::vector<TaskId> ids = {tasks[0].id, tasks[1].id, tasks[2].id,
                                   tasks[3].id, tasks[4].id};

  // RR: task0 -> A (pumper thread blocks inside dispatch).
  std::thread pumper([&] { ASSERT_TRUE(scheduler->Submit(std::move(tasks[0])).ok()); });
  ASSERT_TRUE(entered.BlockingWait(NowNanos() + 5'000'000'000));
  // task1 -> B (dispatches), task2 -> A (queued), task3 -> B, task4 -> A (queued).
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(scheduler->Submit(std::move(tasks[i])).ok());
  }
  EXPECT_EQ(scheduler->queued_on(a), 2);
  EXPECT_EQ(scheduler->inflight_on(b), 2);

  // B finishes task1: capacity frees, B steals the newest of A's queue.
  blocking.store(false);
  scheduler->OnTaskFinished(ids[1]);
  EXPECT_EQ(metrics_.GetCounter("scheduler.steal_count").value(), 1);
  EXPECT_EQ(scheduler->queued_on(a), 1);
  {
    MutexLock lock(mu);
    auto it = std::find_if(calls.begin(), calls.end(),
                           [&](const auto& c) { return c.first == ids[4]; });
    ASSERT_NE(it, calls.end());
    EXPECT_EQ(it->second, b);  // stolen task ran on the idle node
  }

  // Unblock A's pumper; it drains the remaining queued task locally.
  release.Set();
  pumper.join();
  MutexLock lock(mu);
  EXPECT_EQ(calls.size(), 5u);
  for (TaskId id : ids) {
    EXPECT_EQ(std::count_if(calls.begin(), calls.end(),
                            [&](const auto& c) { return c.first == id; }),
              1)
        << "task dispatched exactly once";
  }
  auto t2 = std::find_if(calls.begin(), calls.end(),
                         [&](const auto& c) { return c.first == ids[2]; });
  EXPECT_EQ(t2->second, a);  // non-stolen queued task stayed on its node
}

TEST_F(SchedulerTest, NodeDiesMidStealTaskRetriesElsewhere) {
  // The thief dies between victim-pop and dispatch: the stolen task must be
  // re-routed, not lost, and must end up dispatched exactly once.
  const NodeId a = node_ids_[0];
  const NodeId b = node_ids_[1];
  Event entered, release;
  std::atomic<bool> blocking{true};
  std::atomic<bool> b_dead{false};
  Mutex mu;
  std::vector<std::pair<TaskId, NodeId>> ok_calls;
  auto scheduler = std::make_unique<Scheduler>(
      cache_.get(), &metrics_, SchedulingPolicy::kRoundRobin,
      [&](const TaskSpec& spec, NodeId target) -> Status {
        if (target == b && b_dead.load()) {
          return Status::Unavailable("node died mid-steal");
        }
        {
          MutexLock lock(mu);
          ok_calls.emplace_back(spec.id, target);
        }
        if (target == a && blocking.load()) {
          entered.Set();
          release.BlockingWait();
        }
        return Status::Ok();
      });
  scheduler->SetNodes({SchedulableNode{a, DeviceKind::kCpu, NodeId(), 2},
                       SchedulableNode{b, DeviceKind::kCpu, NodeId(), 2}});

  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(MakeTask());
  }
  const TaskId queued_id = tasks[2].id;
  const TaskId b_task = tasks[1].id;

  std::thread pumper([&] { ASSERT_TRUE(scheduler->Submit(std::move(tasks[0])).ok()); });
  ASSERT_TRUE(entered.BlockingWait(NowNanos() + 5'000'000'000));
  ASSERT_TRUE(scheduler->Submit(std::move(tasks[1])).ok());  // -> B, dispatched
  ASSERT_TRUE(scheduler->Submit(std::move(tasks[2])).ok());  // -> A, queued
  ASSERT_EQ(scheduler->queued_on(a), 1);

  // B dies, then finishes its task: the steal of `queued_id` fails on B,
  // B leaves the candidate set, and the task re-queues on A.
  b_dead.store(true);
  scheduler->OnTaskFinished(b_task);
  EXPECT_EQ(metrics_.GetCounter("scheduler.steal_count").value(), 1);
  EXPECT_GE(metrics_.GetCounter("scheduler.dispatch_retries").value(), 1);
  EXPECT_EQ(scheduler->queued_on(a), 1);  // re-routed back to the only live node

  blocking.store(false);
  release.Set();
  pumper.join();
  MutexLock lock(mu);
  EXPECT_EQ(std::count_if(ok_calls.begin(), ok_calls.end(),
                          [&](const auto& c) { return c.first == queued_id; }),
            1);
  auto it = std::find_if(ok_calls.begin(), ok_calls.end(),
                         [&](const auto& c) { return c.first == queued_id; });
  EXPECT_EQ(it->second, a);
}

TEST_F(SchedulerTest, ConcurrentSubmitNoLossNoDoubleDispatch) {
  // TSan-targeted hammer: submitters, completions, and steals race across
  // per-node queues and sharded maps; every task must dispatch exactly once.
  constexpr int kThreads = 4;
  constexpr int kTasksPerThread = 100;
  Mutex mu;
  std::unordered_map<TaskId, int> dispatch_count;
  std::vector<TaskId> completable;
  auto scheduler = std::make_unique<Scheduler>(
      cache_.get(), &metrics_, SchedulingPolicy::kLoadAware,
      [&](const TaskSpec& spec, NodeId) {
        MutexLock lock(mu);
        dispatch_count[spec.id] += 1;
        completable.push_back(spec.id);
        return Status::Ok();
      });
  std::vector<SchedulableNode> nodes;
  for (NodeId n : node_ids_) {
    nodes.push_back(SchedulableNode{n, DeviceKind::kCpu, NodeId(), 2});
  }
  scheduler->SetNodes(std::move(nodes));

  std::atomic<bool> stop{false};
  std::thread completer([&] {
    // Completions race with submissions, repeatedly triggering the
    // OnTaskFinished steal probe while queues churn.
    while (!stop.load()) {
      std::vector<TaskId> batch;
      {
        MutexLock lock(mu);
        batch.swap(completable);
      }
      for (TaskId id : batch) {
        scheduler->OnTaskFinished(id);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  stop.store(true);
  completer.join();

  MutexLock lock(mu);
  EXPECT_EQ(dispatch_count.size(),
            static_cast<size_t>(kThreads * kTasksPerThread));
  for (const auto& [id, count] : dispatch_count) {
    EXPECT_EQ(count, 1) << "task " << id << " dispatched " << count << " times";
  }
}

}  // namespace
}  // namespace skadi
