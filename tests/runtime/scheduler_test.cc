// Unit tests of the centralized scheduler's placement policies and gang
// logic, using a fake dispatch function that records targets.
#include "src/runtime/scheduler.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : topo_(std::make_shared<Topology>()) {
    for (int i = 0; i < 4; ++i) {
      NodeInfo info;
      info.id = NodeId::Next();
      info.role = NodeRole::kServer;
      info.rack = i / 2;
      EXPECT_TRUE(topo_->AddNode(info).ok());
      node_ids_.push_back(info.id);
    }
    fabric_ = std::make_unique<Fabric>(topo_);
    cache_ = std::make_unique<CachingLayer>(fabric_.get());
    for (NodeId n : node_ids_) {
      cache_->RegisterStore(n, std::make_shared<LocalObjectStore>(DeviceId::Next(),
                                                                  1LL << 30));
    }
  }

  std::unique_ptr<Scheduler> MakeScheduler(SchedulingPolicy policy,
                                           DeviceKind kind = DeviceKind::kCpu,
                                           int workers = 2) {
    auto scheduler = std::make_unique<Scheduler>(
        cache_.get(), &metrics_, policy,
        [this](const TaskSpec& spec, NodeId target) {
          dispatched_.emplace_back(spec.id, target);
          return dispatch_result_;
        });
    std::vector<SchedulableNode> nodes;
    for (NodeId n : node_ids_) {
      nodes.push_back(SchedulableNode{n, kind, NodeId(), workers});
    }
    scheduler->SetNodes(std::move(nodes));
    return scheduler;
  }

  TaskSpec MakeTask(std::vector<TaskArg> args = {}) {
    TaskSpec spec;
    spec.id = TaskId::Next();
    spec.function = "f";
    spec.args = std::move(args);
    return spec;
  }

  std::shared_ptr<Topology> topo_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<CachingLayer> cache_;
  MetricsRegistry metrics_;
  std::vector<NodeId> node_ids_;
  std::vector<std::pair<TaskId, NodeId>> dispatched_;
  Status dispatch_result_ = Status::Ok();
};

TEST_F(SchedulerTest, RoundRobinCycles) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  }
  ASSERT_EQ(dispatched_.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(dispatched_[static_cast<size_t>(i)].second,
              node_ids_[static_cast<size_t>(i) % 4]);
  }
}

TEST_F(SchedulerTest, LoadAwarePicksIdleNode) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kLoadAware);
  // Three tasks: all different nodes (load rises as tasks stay in flight).
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  std::set<NodeId> targets;
  for (auto& [task, node] : dispatched_) {
    targets.insert(node);
  }
  EXPECT_EQ(targets.size(), 3u);
}

TEST_F(SchedulerTest, LoadRebalancesAfterFinish) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kLoadAware);
  TaskSpec first = MakeTask();
  TaskId first_id = first.id;
  ASSERT_TRUE(scheduler->Submit(std::move(first)).ok());
  NodeId first_node = dispatched_[0].second;
  scheduler->OnTaskFinished(first_id);
  EXPECT_EQ(scheduler->inflight_on(first_node), 0);
}

TEST_F(SchedulerTest, LocalityFollowsBytes) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kLocalityAware);
  // Put a big object on node 2, small on node 0.
  ObjectId big = ObjectId::Next();
  ObjectId small = ObjectId::Next();
  ASSERT_TRUE(cache_->Put(big, Buffer::Zeros(1024 * 1024), node_ids_[2]).ok());
  ASSERT_TRUE(cache_->Put(small, Buffer::Zeros(64), node_ids_[0]).ok());
  scheduler->MarkObjectReady(big);
  scheduler->MarkObjectReady(small);

  ASSERT_TRUE(scheduler->Submit(MakeTask({TaskArg::Ref({big, NodeId()}),
                              TaskArg::Ref({small, NodeId()})})).ok());
  ASSERT_EQ(dispatched_.size(), 1u);
  EXPECT_EQ(dispatched_[0].second, node_ids_[2]);
}

TEST_F(SchedulerTest, PinnedNodeOverridesPolicy) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  TaskSpec spec = MakeTask();
  spec.pinned_node = node_ids_[3];
  ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
  EXPECT_EQ(dispatched_[0].second, node_ids_[3]);
}

TEST_F(SchedulerTest, RequiredDeviceFiltersCandidates) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin, DeviceKind::kCpu);
  TaskSpec spec = MakeTask();
  spec.required_device = DeviceKind::kGpu;  // nothing matches
  ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
  EXPECT_TRUE(dispatched_.empty());
  EXPECT_EQ(metrics_.GetCounter("scheduler.unschedulable").value(), 1);
}

TEST_F(SchedulerTest, ParksUntilDependencyReady) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  ObjectId dep = ObjectId::Next();
  ASSERT_TRUE(scheduler->Submit(MakeTask({TaskArg::Ref({dep, NodeId()})})).ok());
  EXPECT_TRUE(dispatched_.empty());
  EXPECT_EQ(scheduler->pending_tasks(), 1u);
  scheduler->OnObjectReady(dep);
  EXPECT_EQ(dispatched_.size(), 1u);
  EXPECT_EQ(scheduler->pending_tasks(), 0u);
}

TEST_F(SchedulerTest, MultiDepTaskWaitsForAll) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  ObjectId a = ObjectId::Next();
  ObjectId b = ObjectId::Next();
  ASSERT_TRUE(scheduler->Submit(
      MakeTask({TaskArg::Ref({a, NodeId()}), TaskArg::Ref({b, NodeId()})})).ok());
  scheduler->OnObjectReady(a);
  EXPECT_TRUE(dispatched_.empty());
  scheduler->OnObjectReady(b);
  EXPECT_EQ(dispatched_.size(), 1u);
}

TEST_F(SchedulerTest, GangHeldUntilComplete) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec = MakeTask();
    spec.gang_group = "g";
    spec.gang_size = 4;
    ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
    EXPECT_TRUE(dispatched_.empty());
  }
  TaskSpec last = MakeTask();
  last.gang_group = "g";
  last.gang_size = 4;
  ASSERT_TRUE(scheduler->Submit(std::move(last)).ok());
  EXPECT_EQ(dispatched_.size(), 4u);
  EXPECT_EQ(metrics_.GetCounter("scheduler.gangs_dispatched").value(), 1);
}

TEST_F(SchedulerTest, GangWaitsForSlots) {
  // 4 nodes x 1 worker = 4 slots; occupy 2, gang of 4 must wait.
  auto scheduler = MakeScheduler(SchedulingPolicy::kLoadAware, DeviceKind::kCpu, 1);
  TaskSpec f1 = MakeTask();
  TaskSpec f2 = MakeTask();
  TaskId f1_id = f1.id;
  TaskId f2_id = f2.id;
  ASSERT_TRUE(scheduler->Submit(std::move(f1)).ok());
  ASSERT_TRUE(scheduler->Submit(std::move(f2)).ok());
  dispatched_.clear();

  for (int i = 0; i < 4; ++i) {
    TaskSpec spec = MakeTask();
    spec.gang_group = "spmd";
    spec.gang_size = 4;
    ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
  }
  EXPECT_TRUE(dispatched_.empty());  // only 2 free slots

  scheduler->OnTaskFinished(f1_id);
  EXPECT_TRUE(dispatched_.empty());  // 3 free: still short
  scheduler->OnTaskFinished(f2_id);
  EXPECT_EQ(dispatched_.size(), 4u);  // all-or-nothing release
}

TEST_F(SchedulerTest, TwoGangsDispatchIndependently) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  for (const char* group : {"g1", "g2"}) {
    for (int i = 0; i < 2; ++i) {
      TaskSpec spec = MakeTask();
      spec.gang_group = group;
      spec.gang_size = 2;
      ASSERT_TRUE(scheduler->Submit(std::move(spec)).ok());
    }
  }
  EXPECT_EQ(dispatched_.size(), 4u);
  EXPECT_EQ(metrics_.GetCounter("scheduler.gangs_dispatched").value(), 2);
}

TEST_F(SchedulerTest, NodeFailureRedispatchesInflight) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  ASSERT_TRUE(scheduler->Submit(MakeTask()).ok());
  ASSERT_EQ(dispatched_.size(), 1u);
  NodeId victim = dispatched_[0].second;
  dispatched_.clear();
  scheduler->OnNodeFailure(victim);
  ASSERT_EQ(dispatched_.size(), 1u);
  EXPECT_NE(dispatched_[0].second, victim);
}

TEST_F(SchedulerTest, DispatchFailureRetriesElsewhere) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  // First dispatch attempt fails; scheduler must drop the node and retry.
  int calls = 0;
  auto failing = std::make_unique<Scheduler>(
      cache_.get(), &metrics_, SchedulingPolicy::kRoundRobin,
      [this, &calls](const TaskSpec& spec, NodeId target) -> Status {
        ++calls;
        if (calls == 1) {
          return Status::Unavailable("node died");
        }
        dispatched_.emplace_back(spec.id, target);
        return Status::Ok();
      });
  std::vector<SchedulableNode> nodes;
  for (NodeId n : node_ids_) {
    nodes.push_back(SchedulableNode{n, DeviceKind::kCpu, NodeId(), 2});
  }
  failing->SetNodes(std::move(nodes));
  ASSERT_TRUE(failing->Submit(MakeTask()).ok());
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(dispatched_.size(), 1u);
}

TEST_F(SchedulerTest, PolicySwitchAtRuntime) {
  auto scheduler = MakeScheduler(SchedulingPolicy::kRoundRobin);
  EXPECT_EQ(scheduler->policy(), SchedulingPolicy::kRoundRobin);
  scheduler->SetPolicy(SchedulingPolicy::kRandom);
  EXPECT_EQ(scheduler->policy(), SchedulingPolicy::kRandom);
}

TEST_F(SchedulerTest, PolicyNamesResolve) {
  EXPECT_EQ(SchedulingPolicyName(SchedulingPolicy::kLocalityAware), "locality_aware");
  EXPECT_EQ(SchedulingPolicyName(SchedulingPolicy::kRandom), "random");
}

}  // namespace
}  // namespace skadi
