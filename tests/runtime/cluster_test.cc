#include "src/runtime/cluster.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(ClusterTest, DefaultConfigBuildsServersAndDurable) {
  ClusterConfig config;
  auto cluster = Cluster::Create(config);
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->topology().NodesWithRole(NodeRole::kServer).size(), 2u);
  EXPECT_TRUE(cluster->durable().valid());
  EXPECT_TRUE(cluster->head().valid());
  EXPECT_EQ(cluster->ComputeNodes().size(), 2u);
}

TEST(ClusterTest, DeviceComplexBuildsDpuAndAccelerators) {
  ClusterConfig config;
  config.device_complexes = 1;
  config.gpus_per_complex = 2;
  config.fpgas_per_complex = 3;
  auto cluster = Cluster::Create(config);
  EXPECT_EQ(cluster->NodesWithDevice(DeviceKind::kDpu).size(), 1u);
  EXPECT_EQ(cluster->NodesWithDevice(DeviceKind::kGpu).size(), 2u);
  EXPECT_EQ(cluster->NodesWithDevice(DeviceKind::kFpga).size(), 3u);
  // 2 servers + 1 dpu + 2 gpus + 3 fpgas = 8 compute nodes.
  EXPECT_EQ(cluster->ComputeNodes().size(), 8u);
}

TEST(ClusterTest, AcceleratorsKnowTheirDpu) {
  ClusterConfig config;
  config.device_complexes = 1;
  auto cluster = Cluster::Create(config);
  NodeId dpu = cluster->NodesWithDevice(DeviceKind::kDpu)[0];
  for (NodeId gpu : cluster->NodesWithDevice(DeviceKind::kGpu)) {
    EXPECT_EQ(cluster->node(gpu)->dpu, dpu);
  }
  for (NodeId fpga : cluster->NodesWithDevice(DeviceKind::kFpga)) {
    EXPECT_EQ(cluster->node(fpga)->dpu, dpu);
  }
  // Servers have no DPU controller.
  EXPECT_FALSE(cluster->node(cluster->head())->dpu.valid());
}

TEST(ClusterTest, MemoryBladesRegisteredInCache) {
  ClusterConfig config;
  config.memory_blades = 2;
  config.blade_bytes = 1024 * 1024;
  auto cluster = Cluster::Create(config);
  auto blades = cluster->topology().NodesWithRole(NodeRole::kMemoryBlade);
  ASSERT_EQ(blades.size(), 2u);
  for (NodeId blade : blades) {
    ASSERT_NE(cluster->cache().StoreOf(blade), nullptr);
    EXPECT_EQ(cluster->cache().StoreOf(blade)->capacity_bytes(), 1024 * 1024);
    EXPECT_FALSE(cluster->node(blade)->is_compute());
  }
}

TEST(ClusterTest, RacksSpreadServers) {
  ClusterConfig config;
  config.racks = 2;
  config.servers_per_rack = 2;
  auto cluster = Cluster::Create(config);
  auto servers = cluster->topology().NodesWithRole(NodeRole::kServer);
  ASSERT_EQ(servers.size(), 4u);
  int rack0 = 0;
  for (NodeId s : servers) {
    if (cluster->topology().GetNode(s)->rack == 0) {
      ++rack0;
    }
  }
  EXPECT_EQ(rack0, 2);
}

TEST(ClusterTest, NoDurableStoreWhenDisabled) {
  ClusterConfig config;
  config.with_durable_store = false;
  auto cluster = Cluster::Create(config);
  EXPECT_FALSE(cluster->durable().valid());
}

TEST(ClusterTest, NodeLookup) {
  auto cluster = Cluster::Create(ClusterConfig{});
  NodeId head = cluster->head();
  ASSERT_NE(cluster->node(head), nullptr);
  EXPECT_EQ(cluster->node(head)->id, head);
  EXPECT_EQ(cluster->node(NodeId(424242)), nullptr);
}

}  // namespace
}  // namespace skadi
