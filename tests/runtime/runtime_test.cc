// Integration tests of the stateful serverless runtime: the distributed task
// API, futures (pull + push), scheduling policies, actors, gang scheduling,
// autoscaling, and failure recovery.
#include "src/runtime/runtime.h"

#include <gtest/gtest.h>

#include "tests/runtime/runtime_test_util.h"

namespace skadi {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  void Build(RuntimeOptions options = {}, ClusterConfig config = DefaultConfig()) {
    // The runtime references the cluster from worker threads: tear the old
    // runtime down before replacing the cluster it points at.
    runtime_.reset();
    cluster_ = Cluster::Create(config);
    RegisterTestFunctions(registry_);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_, options);
  }

  static ClusterConfig DefaultConfig() {
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 2;
    config.workers_per_server = 2;
    return config;
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(RuntimeTest, SubmitByValueAndGet) {
  Build();
  auto refs = runtime_->Submit(Call("echo", {TaskArg::Value(Buffer::FromString("hi"))}));
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 1u);
  auto result = runtime_->Get((*refs)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsStringView(), "hi");
}

TEST_F(RuntimeTest, PutThenGet) {
  Build();
  auto ref = runtime_->Put(Buffer::FromString("stored"));
  ASSERT_TRUE(ref.ok());
  auto result = runtime_->Get(*ref);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsStringView(), "stored");
}

TEST_F(RuntimeTest, ChainThroughFutures) {
  Build();
  auto a = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(1))}));
  ASSERT_TRUE(a.ok());
  auto b = runtime_->Submit(Call("inc_i64", {TaskArg::Ref((*a)[0])}));
  ASSERT_TRUE(b.ok());
  auto c = runtime_->Submit(Call("inc_i64", {TaskArg::Ref((*b)[0])}));
  ASSERT_TRUE(c.ok());
  auto result = runtime_->Get((*c)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(I64Of(*result), 4);
}

TEST_F(RuntimeTest, FanOutFanIn) {
  Build();
  std::vector<TaskArg> leaves;
  for (int i = 1; i <= 8; ++i) {
    auto ref = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(i))}));
    ASSERT_TRUE(ref.ok());
    leaves.push_back(TaskArg::Ref((*ref)[0]));
  }
  auto total = runtime_->Submit(Call("sum_all", std::move(leaves)));
  ASSERT_TRUE(total.ok());
  auto result = runtime_->Get((*total)[0]);
  ASSERT_TRUE(result.ok());
  // sum of (i+1) for i=1..8 = 44.
  EXPECT_EQ(I64Of(*result), 44);
}

TEST_F(RuntimeTest, MixedValueAndRefArgs) {
  Build();
  auto a = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(10))}));
  ASSERT_TRUE(a.ok());
  auto sum = runtime_->Submit(
      Call("add_i64", {TaskArg::Ref((*a)[0]), TaskArg::Value(I64Buffer(5))}));
  ASSERT_TRUE(sum.ok());
  auto result = runtime_->Get((*sum)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(I64Of(*result), 16);
}

TEST_F(RuntimeTest, UnknownFunctionRejectedAtSubmit) {
  Build();
  auto refs = runtime_->Submit(Call("nope", {}));
  EXPECT_EQ(refs.status().code(), StatusCode::kNotFound);
}

TEST_F(RuntimeTest, FailingTaskMarksOutputLost) {
  Build();
  auto refs = runtime_->Submit(Call("fail_always", {}));
  ASSERT_TRUE(refs.ok());
  auto result = runtime_->Get((*refs)[0], 300);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(runtime_->metrics().GetCounter("runtime.tasks_failed").value(), 1);
}

TEST_F(RuntimeTest, WaitBlocksForAllRefs) {
  Build();
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 4; ++i) {
    auto r = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(i))}));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  EXPECT_TRUE(runtime_->Wait(refs, 10000).ok());
  for (const ObjectRef& ref : refs) {
    EXPECT_TRUE(runtime_->Get(ref).ok());
  }
}

TEST_F(RuntimeTest, ReleaseDeletesObject) {
  Build();
  auto ref = runtime_->Put(Buffer::FromString("temp"));
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(runtime_->Release(*ref).ok());
  EXPECT_FALSE(cluster_->cache().Exists(ref->id));
}

TEST_F(RuntimeTest, PullModeCountsPullResolutions) {
  RuntimeOptions options;
  options.futures = FutureProtocol::kPull;
  options.policy = SchedulingPolicy::kRoundRobin;  // force remote placements
  Build(options);
  auto a = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(0))}));
  auto b = runtime_->Submit(Call("inc_i64", {TaskArg::Ref((*a)[0])}));
  ASSERT_TRUE(runtime_->Get((*b)[0]).ok());
  // At least the consumer resolving a non-local producer output pulls.
  EXPECT_GE(runtime_->metrics().GetCounter("runtime.pull_resolutions").value() +
                runtime_->metrics().GetCounter("runtime.resolve_local_hits").value(),
            1);
}

TEST_F(RuntimeTest, PushModeDeliversBeforeConsumption) {
  RuntimeOptions options;
  options.futures = FutureProtocol::kPush;
  options.policy = SchedulingPolicy::kRoundRobin;
  Build(options);
  auto a = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(0))}));
  auto b = runtime_->Submit(Call("inc_i64", {TaskArg::Ref((*a)[0])}));
  auto result = runtime_->Get((*b)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(I64Of(*result), 2);
  // The consumer's read of the pushed value was local.
  EXPECT_GE(runtime_->metrics().GetCounter("runtime.pushes").value(), 1);
  EXPECT_EQ(runtime_->metrics().GetCounter("runtime.pull_resolutions").value(), 0);
}

TEST_F(RuntimeTest, PushModeBatchesResolutionsPerDestination) {
  // A fan-in: sum_all consumes 8 upstream outputs, so its dispatch registers
  // 8 ready ref args at once. The batcher must coalesce those resolutions
  // per (owner, consumer-node) — one fabric message instead of 8 — while
  // every push still lands before consumption (pull count stays 0).
  RuntimeOptions options;
  options.futures = FutureProtocol::kPush;
  options.policy = SchedulingPolicy::kRoundRobin;
  Build(options);
  std::vector<TaskArg> leaves;
  for (int i = 0; i < 8; ++i) {
    auto ref = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(i))}));
    ASSERT_TRUE(ref.ok());
    leaves.push_back(TaskArg::Ref((*ref)[0]));
  }
  auto total = runtime_->Submit(Call("sum_all", std::move(leaves)));
  ASSERT_TRUE(total.ok());
  auto result = runtime_->Get((*total)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(I64Of(*result), 36);  // sum of (i+1), i = 0..7

  int64_t batches = runtime_->metrics().GetCounter("runtime.push_batches").value();
  int64_t entries =
      runtime_->metrics().GetCounter("runtime.push_batched_entries").value();
  int64_t pushes = runtime_->metrics().GetCounter("runtime.pushes").value();
  EXPECT_GE(batches, 1);
  EXPECT_EQ(entries, pushes);  // every push went through the batcher
  EXPECT_GE(entries, 8);       // all 8 leaf outputs were pushed
  // All 8 resolutions share one owner and one destination: coalescing must
  // save control messages, i.e. strictly fewer batches than entries.
  EXPECT_LT(batches, entries);
  EXPECT_EQ(runtime_->metrics().GetCounter("runtime.pull_resolutions").value(), 0);
}

TEST_F(RuntimeTest, BatchingDisabledFallsBackToPerConsumerPushes) {
  RuntimeOptions options;
  options.futures = FutureProtocol::kPush;
  options.policy = SchedulingPolicy::kRoundRobin;
  options.batch_pushes = false;
  Build(options);
  auto a = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(0))}));
  auto b = runtime_->Submit(Call("inc_i64", {TaskArg::Ref((*a)[0])}));
  auto result = runtime_->Get((*b)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(I64Of(*result), 2);
  EXPECT_GE(runtime_->metrics().GetCounter("runtime.pushes").value(), 1);
  EXPECT_EQ(runtime_->metrics().GetCounter("runtime.push_batches").value(), 0);
}

TEST_F(RuntimeTest, GetAllGathersConcurrently) {
  Build();
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 6; ++i) {
    auto r = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(i))}));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  auto buffers = runtime_->GetAll(refs);
  ASSERT_TRUE(buffers.ok());
  ASSERT_EQ(buffers->size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(I64Of((*buffers)[static_cast<size_t>(i)]), i + 1)
        << "results must be in input order";
  }
}

TEST_F(RuntimeTest, GetAllEmptyInputReturnsEmpty) {
  Build();
  auto buffers = runtime_->GetAll({});
  ASSERT_TRUE(buffers.ok());
  EXPECT_TRUE(buffers->empty());
}

TEST_F(RuntimeTest, GetAllPropagatesFirstFailure) {
  Build();
  auto good = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(1))}));
  ASSERT_TRUE(good.ok());
  auto bad = runtime_->Submit(Call("fail_always", {}));
  ASSERT_TRUE(bad.ok());
  auto buffers = runtime_->GetAll({(*good)[0], (*bad)[0]}, 2000);
  EXPECT_FALSE(buffers.ok());
}

TEST_F(RuntimeTest, LocalityPolicyPlacesComputeAtData) {
  RuntimeOptions options;
  options.policy = SchedulingPolicy::kLocalityAware;
  Build(options);

  // Park a large object on a non-head server, then run a dependent task.
  NodeId target;
  for (NodeId n : cluster_->ComputeNodes()) {
    if (n != cluster_->head()) {
      target = n;
      break;
    }
  }
  ObjectId big = ObjectId::Next();
  ASSERT_TRUE(cluster_->cache().Put(big, Buffer::Zeros(8 * 1024 * 1024), target).ok());
  ASSERT_TRUE(runtime_->ownership(cluster_->head()).RegisterObject(big, TaskId()).ok());
  ASSERT_TRUE(runtime_->ownership(cluster_->head()).MarkReady(big, target, 8 * 1024 * 1024).ok());
  runtime_->scheduler().MarkObjectReady(big);

  int64_t executed_before = runtime_->raylet(target)->tasks_executed();
  auto refs = runtime_->Submit(
      Call("echo", {TaskArg::Ref(ObjectRef{big, cluster_->head()})}));
  ASSERT_TRUE(refs.ok());
  ASSERT_TRUE(runtime_->Wait({(*refs)[0]}, 10000).ok());
  EXPECT_EQ(runtime_->raylet(target)->tasks_executed(), executed_before + 1);
}

TEST_F(RuntimeTest, RequiredDeviceRestrictsPlacement) {
  ClusterConfig config = DefaultConfig();
  config.device_complexes = 1;
  config.gpus_per_complex = 1;
  config.fpgas_per_complex = 0;
  Build({}, config);

  TaskSpec spec = Call("echo", {TaskArg::Value(Buffer::FromString("gpu!"))});
  spec.required_device = DeviceKind::kGpu;
  auto refs = runtime_->Submit(std::move(spec));
  ASSERT_TRUE(refs.ok());
  ASSERT_TRUE(runtime_->Wait({(*refs)[0]}, 10000).ok());
  NodeId gpu = cluster_->NodesWithDevice(DeviceKind::kGpu)[0];
  EXPECT_EQ(runtime_->raylet(gpu)->tasks_executed(), 1);
}

TEST_F(RuntimeTest, PinnedNodeWins) {
  Build();
  NodeId target = cluster_->ComputeNodes().back();
  TaskSpec spec = Call("echo", {TaskArg::Value(Buffer::FromString("x"))});
  spec.pinned_node = target;
  auto refs = runtime_->Submit(std::move(spec));
  ASSERT_TRUE(refs.ok());
  ASSERT_TRUE(runtime_->Wait({(*refs)[0]}, 10000).ok());
  EXPECT_EQ(runtime_->raylet(target)->tasks_executed(), 1);
}

TEST_F(RuntimeTest, GangDispatchesAtomically) {
  Build();
  // 4 servers x 2 workers = 8 slots; a gang of 4 fits.
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec = Call("inc_i64", {TaskArg::Value(I64Buffer(i))});
    spec.gang_group = "spmd0";
    spec.gang_size = 4;
    auto r = runtime_->Submit(std::move(spec));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  EXPECT_TRUE(runtime_->Wait(refs, 10000).ok());
  EXPECT_EQ(runtime_->metrics().GetCounter("scheduler.gangs_dispatched").value(), 1);
}

TEST_F(RuntimeTest, IncompleteGangStaysParked) {
  Build();
  TaskSpec spec = Call("inc_i64", {TaskArg::Value(I64Buffer(0))});
  spec.gang_group = "lonely";
  spec.gang_size = 3;
  auto r = runtime_->Submit(std::move(spec));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(runtime_->Wait({(*r)[0]}, 100).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(runtime_->scheduler().pending_tasks(), 1u);
}

struct CounterState {
  int64_t value = 0;
};

TEST_F(RuntimeTest, ActorTasksMutateStateSerially) {
  Build();
  ASSERT_TRUE(registry_.Register("counter_add", [](TaskContext& ctx, std::vector<Buffer>& args)
                                        -> Result<std::vector<Buffer>> {
    auto* state = static_cast<CounterState*>(ctx.actor_state->get());
    state->value += I64Of(args[0]);
    return std::vector<Buffer>{I64Buffer(state->value)};
  }).ok());

  NodeId home = cluster_->ComputeNodes()[1];
  auto actor = runtime_->CreateActor(home, std::make_shared<CounterState>());
  ASSERT_TRUE(actor.ok());

  std::vector<ObjectRef> refs;
  for (int i = 0; i < 20; ++i) {
    auto r = runtime_->SubmitActorTask(*actor,
                                       Call("counter_add", {TaskArg::Value(I64Buffer(1))}));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  ASSERT_TRUE(runtime_->Wait(refs, 10000).ok());
  // Serial execution: every intermediate value distinct, final == 20.
  auto last = runtime_->Get(refs.back());
  ASSERT_TRUE(last.ok());
  std::set<int64_t> seen;
  for (const ObjectRef& ref : refs) {
    auto v = runtime_->Get(ref);
    ASSERT_TRUE(v.ok());
    seen.insert(I64Of(*v));
  }
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.rbegin(), 20);
}

TEST_F(RuntimeTest, ActorOnDeadNodeUnknown) {
  Build();
  auto actor = runtime_->CreateActor(NodeId(777777), nullptr);
  EXPECT_EQ(actor.status().code(), StatusCode::kNotFound);
}

TEST_F(RuntimeTest, Gen1RoutesDeviceControlThroughDpu) {
  ClusterConfig config = DefaultConfig();
  config.device_complexes = 1;
  config.gpus_per_complex = 0;
  config.fpgas_per_complex = 2;

  RuntimeOptions gen1;
  gen1.generation = RuntimeGeneration::kGen1;
  gen1.futures = FutureProtocol::kPull;
  Build(gen1, config);

  // Chain two ops pinned to the two FPGAs: consumer resolution must detour
  // through the DPU in Gen-1.
  auto fpgas = cluster_->NodesWithDevice(DeviceKind::kFpga);
  ASSERT_EQ(fpgas.size(), 2u);
  TaskSpec produce = Call("inc_i64", {TaskArg::Value(I64Buffer(1))});
  produce.pinned_node = fpgas[0];
  auto a = runtime_->Submit(std::move(produce));
  ASSERT_TRUE(a.ok());
  TaskSpec consume = Call("inc_i64", {TaskArg::Ref((*a)[0])});
  consume.pinned_node = fpgas[1];
  auto b = runtime_->Submit(std::move(consume));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(runtime_->Get((*b)[0]).ok());
  int64_t gen1_hops = runtime_->control_hops();

  // Same chain in Gen-2: strictly fewer hops.
  RuntimeOptions gen2;
  gen2.generation = RuntimeGeneration::kGen2;
  gen2.futures = FutureProtocol::kPull;
  ClusterConfig config2 = DefaultConfig();
  config2.device_complexes = 1;
  config2.gpus_per_complex = 0;
  config2.fpgas_per_complex = 2;
  Build(gen2, config2);
  fpgas = cluster_->NodesWithDevice(DeviceKind::kFpga);
  TaskSpec produce2 = Call("inc_i64", {TaskArg::Value(I64Buffer(1))});
  produce2.pinned_node = fpgas[0];
  a = runtime_->Submit(std::move(produce2));
  TaskSpec consume2 = Call("inc_i64", {TaskArg::Ref((*a)[0])});
  consume2.pinned_node = fpgas[1];
  b = runtime_->Submit(std::move(consume2));
  ASSERT_TRUE(runtime_->Get((*b)[0]).ok());
  int64_t gen2_hops = runtime_->control_hops();

  EXPECT_GT(gen1_hops, gen2_hops);
}

TEST_F(RuntimeTest, AutoscalerGrowsUnderLoad) {
  RuntimeOptions options;
  options.autoscaler.enabled = true;
  options.autoscaler.min_workers = 1;
  options.autoscaler.max_workers = 8;
  options.autoscaler.tick_interval_ms = 2;
  ClusterConfig config;
  config.racks = 1;
  config.servers_per_rack = 1;
  config.workers_per_server = 1;
  Build(options, config);

  ASSERT_TRUE(registry_.Register("sleep_5ms", [](TaskContext&, std::vector<Buffer>&)
                                      -> Result<std::vector<Buffer>> {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return std::vector<Buffer>{Buffer()};
  }).ok());

  std::vector<ObjectRef> refs;
  for (int i = 0; i < 40; ++i) {
    auto r = runtime_->Submit(Call("sleep_5ms", {}));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  ASSERT_TRUE(runtime_->Wait(refs, 30000).ok());
  EXPECT_GT(runtime_->autoscaler().scale_ups(), 0);
  EXPECT_GT(runtime_->autoscaler().worker_nanos(), 0);
}

TEST_F(RuntimeTest, LineageRecoveryReproducesLostObject) {
  RuntimeOptions options;
  options.recovery = RecoveryMode::kLineage;
  options.policy = SchedulingPolicy::kRoundRobin;
  Build(options);

  NodeId victim;
  for (NodeId n : cluster_->ComputeNodes()) {
    if (n != cluster_->head()) {
      victim = n;
      break;
    }
  }
  TaskSpec spec = Call("inc_i64", {TaskArg::Value(I64Buffer(41))});
  spec.pinned_node = victim;
  auto a = runtime_->Submit(std::move(spec));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(runtime_->Wait({(*a)[0]}, 10000).ok());

  auto locations = cluster_->cache().Locations((*a)[0].id);
  ASSERT_EQ(locations.size(), 1u);
  ASSERT_EQ(locations[0], victim);
  ASSERT_TRUE(runtime_->KillNode(victim).ok());

  auto result = runtime_->Get((*a)[0], 15000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(I64Of(*result), 42);
  EXPECT_GE(runtime_->metrics().GetCounter("runtime.lineage_reexecutions").value(), 1);
}

TEST_F(RuntimeTest, RecoveryDisabledReportsDataLoss) {
  RuntimeOptions options;
  options.recovery = RecoveryMode::kNone;
  Build(options);

  NodeId victim;
  for (NodeId n : cluster_->ComputeNodes()) {
    if (n != cluster_->head()) {
      victim = n;
      break;
    }
  }
  TaskSpec spec = Call("inc_i64", {TaskArg::Value(I64Buffer(1))});
  spec.pinned_node = victim;
  auto a = runtime_->Submit(std::move(spec));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(runtime_->Wait({(*a)[0]}, 10000).ok());
  ASSERT_TRUE(runtime_->KillNode(victim).ok());
  auto result = runtime_->Get((*a)[0], 3000);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST_F(RuntimeTest, ReplicationSurvivesKillWithoutReexecution) {
  RuntimeOptions options;
  options.recovery = RecoveryMode::kNone;
  ClusterConfig config = DefaultConfig();
  config.caching.replication_factor = 2;
  Build(options, config);

  NodeId victim;
  for (NodeId n : cluster_->ComputeNodes()) {
    if (n != cluster_->head()) {
      victim = n;
      break;
    }
  }
  TaskSpec spec = Call("inc_i64", {TaskArg::Value(I64Buffer(1))});
  spec.pinned_node = victim;
  auto a = runtime_->Submit(std::move(spec));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(runtime_->Wait({(*a)[0]}, 10000).ok());
  ASSERT_TRUE(runtime_->KillNode(victim).ok());

  auto result = runtime_->Get((*a)[0], 5000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(I64Of(*result), 2);
  EXPECT_EQ(runtime_->metrics().GetCounter("runtime.lineage_reexecutions").value(), 0);
}

TEST_F(RuntimeTest, InFlightTasksFailOverToSurvivors) {
  RuntimeOptions options;
  options.recovery = RecoveryMode::kLineage;
  Build(options);

  ASSERT_TRUE(registry_.Register("slow_inc", [](TaskContext&, std::vector<Buffer>& args)
                                     -> Result<std::vector<Buffer>> {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return std::vector<Buffer>{I64Buffer(I64Of(args[0]) + 1)};
  }).ok());

  NodeId victim;
  for (NodeId n : cluster_->ComputeNodes()) {
    if (n != cluster_->head()) {
      victim = n;
      break;
    }
  }
  // Queue several slow tasks on the victim, then kill it mid-flight.
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec = Call("slow_inc", {TaskArg::Value(I64Buffer(i))});
    spec.pinned_node = victim;
    auto r = runtime_->Submit(std::move(spec));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(runtime_->KillNode(victim).ok());

  // Redispatch sends pinned tasks nowhere (pin target dead) — they become
  // unschedulable; accept either recovery or explicit failure, but the
  // runtime must not hang.
  // analyze:allow status-propagation (either outcome is valid; only liveness matters)
  Status st = runtime_->Wait(refs, 5000);
  if (st.ok()) {
    for (const ObjectRef& ref : refs) {
      (void)runtime_->Get(ref, 1000);  // value may be lost mid-failover; only liveness matters
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace skadi
