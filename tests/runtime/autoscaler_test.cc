// Direct tests of the autoscaler against a real raylet.
#include "src/runtime/autoscaler.h"

#include <gtest/gtest.h>

#include "tests/runtime/runtime_test_util.h"

namespace skadi {
namespace {

class AutoscalerTest : public ::testing::Test {
 protected:
  AutoscalerTest() {
    node_.id = NodeId::Next();
    node_.role = NodeRole::kServer;
    node_.device = MakeCpuDevice("as-test");
    node_.store = std::make_shared<LocalObjectStore>(node_.device.id, 1 << 20);
    EXPECT_TRUE(registry_.Register("hold", [this](TaskContext&, std::vector<Buffer>&)
                                   -> Result<std::vector<Buffer>> {
      while (hold_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return std::vector<Buffer>{Buffer()};
    }).ok());

    Raylet::Callbacks callbacks;
    callbacks.resolve_arg = [](const ObjectRef&, const TaskSpec&) -> Result<Buffer> {
      return Buffer();
    };
    callbacks.complete = [this](const TaskSpec&, std::vector<Buffer>) {
      done_.fetch_add(1);
      return Status::Ok();
    };
    callbacks.fail = [this](const TaskSpec&, const Status&, NodeId) { done_.fetch_add(1); };
    raylet_ = std::make_unique<Raylet>(node_, &registry_, &clock_, callbacks, 1);
  }

  void EnqueueHolds(int n) {
    for (int i = 0; i < n; ++i) {
      TaskSpec spec = Call("hold", {});
      spec.id = TaskId::Next();
      ASSERT_TRUE(raylet_->Enqueue(spec).ok());
    }
  }

  ClusterNode node_;
  FunctionRegistry registry_;
  VirtualClock clock_;
  MetricsRegistry metrics_;
  std::unique_ptr<Raylet> raylet_;
  std::atomic<bool> hold_{true};
  std::atomic<int> done_{0};
};

TEST_F(AutoscalerTest, DisabledDoesNothing) {
  AutoscalerOptions options;
  options.enabled = false;
  Autoscaler autoscaler(options, &metrics_);
  autoscaler.Register(raylet_.get());
  autoscaler.Start();  // no-op
  EnqueueHolds(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(autoscaler.scale_ups(), 0);
  EXPECT_EQ(raylet_->num_workers(), 1u);
  hold_.store(false);
  raylet_->Shutdown();
}

TEST_F(AutoscalerTest, GrowsUnderBacklogShrinksWhenIdle) {
  AutoscalerOptions options;
  options.enabled = true;
  options.min_workers = 1;
  options.max_workers = 6;
  options.tick_interval_ms = 2;
  options.idle_ticks_before_scale_down = 2;
  Autoscaler autoscaler(options, &metrics_);
  autoscaler.Register(raylet_.get());
  autoscaler.Start();

  EnqueueHolds(12);
  // Wait for scale-up.
  for (int i = 0; i < 200 && raylet_->num_workers() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(autoscaler.scale_ups(), 0);
  size_t peak = raylet_->num_workers();
  EXPECT_GT(peak, 1u);
  EXPECT_LE(peak, options.max_workers);

  // Release the tasks; queue drains; scale-down follows.
  hold_.store(false);
  for (int i = 0; i < 500 && done_.load() < 12; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(done_.load(), 12);
  for (int i = 0; i < 500 && autoscaler.scale_downs() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(autoscaler.scale_downs(), 0);
  EXPECT_GE(raylet_->num_workers(), options.min_workers);

  autoscaler.Stop();
  raylet_->Shutdown();
}

TEST_F(AutoscalerTest, TracksWorkerTime) {
  AutoscalerOptions options;
  options.enabled = true;
  options.tick_interval_ms = 2;
  Autoscaler autoscaler(options, &metrics_);
  autoscaler.Register(raylet_.get());
  autoscaler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  autoscaler.Stop();
  EXPECT_GT(autoscaler.worker_nanos(), 0);
  hold_.store(false);
  raylet_->Shutdown();
}

TEST_F(AutoscalerTest, RespectsMaxWorkers) {
  AutoscalerOptions options;
  options.enabled = true;
  options.min_workers = 1;
  options.max_workers = 3;
  options.tick_interval_ms = 1;
  Autoscaler autoscaler(options, &metrics_);
  autoscaler.Register(raylet_.get());
  autoscaler.Start();
  EnqueueHolds(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(raylet_->num_workers(), 3u);
  hold_.store(false);
  autoscaler.Stop();
  raylet_->Shutdown();
}

}  // namespace
}  // namespace skadi
