// Unit tests of the raylet daemon in isolation (hand-wired callbacks, no
// scheduler/ownership above it).
#include "src/runtime/raylet.h"

#include <atomic>

#include <gtest/gtest.h>

#include "tests/runtime/runtime_test_util.h"

namespace skadi {
namespace {

class RayletTest : public ::testing::Test {
 protected:
  RayletTest() {
    node_.id = NodeId::Next();
    node_.role = NodeRole::kServer;
    node_.device = MakeCpuDevice("raylet-test");
    node_.store = std::make_shared<LocalObjectStore>(node_.device.id, 1 << 20);
    RegisterTestFunctions(registry_);
  }

  std::unique_ptr<Raylet> MakeRaylet(int workers = 2) {
    Raylet::Callbacks callbacks;
    callbacks.resolve_arg = [this](const ObjectRef& ref, const TaskSpec&)
        -> Result<Buffer> {
      MutexLock lock(mu_);
      auto it = resolvable_.find(ref.id);
      if (it == resolvable_.end()) {
        return Status::NotFound("no such object");
      }
      return it->second;
    };
    callbacks.complete = [this](const TaskSpec& spec, std::vector<Buffer> outputs) {
      MutexLock lock(mu_);
      completed_.emplace_back(spec.id, std::move(outputs));
      cv_.NotifyAll();
      return Status::Ok();
    };
    callbacks.fail = [this](const TaskSpec& spec, const Status& status, NodeId) {
      MutexLock lock(mu_);
      failed_.emplace_back(spec.id, status);
      cv_.NotifyAll();
    };
    return std::make_unique<Raylet>(node_, &registry_, &clock_, callbacks, workers);
  }

  // Waits until `n` completions+failures accumulated.
  void AwaitOutcomes(size_t n, int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    MutexLock lock(mu_);
    while (completed_.size() + failed_.size() < n) {
      if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }

  ClusterNode node_;
  FunctionRegistry registry_;
  VirtualClock clock_;
  Mutex mu_;
  CondVar cv_;
  std::map<ObjectId, Buffer> resolvable_;
  std::vector<std::pair<TaskId, std::vector<Buffer>>> completed_;
  std::vector<std::pair<TaskId, Status>> failed_;
};

TEST_F(RayletTest, ExecutesValueTask) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("inc_i64", {TaskArg::Value(I64Buffer(9))});
  spec.id = TaskId::Next();
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(I64Of(completed_[0].second[0]), 10);
  EXPECT_EQ(raylet->tasks_executed(), 1);
}

TEST_F(RayletTest, ResolvesRefArgsThroughCallback) {
  auto raylet = MakeRaylet();
  ObjectId dep = ObjectId::Next();
  resolvable_[dep] = I64Buffer(41);
  TaskSpec spec = Call("inc_i64", {TaskArg::Ref({dep, NodeId::Next()})});
  spec.id = TaskId::Next();
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(I64Of(completed_[0].second[0]), 42);
}

TEST_F(RayletTest, UnresolvableArgFailsTask) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("inc_i64", {TaskArg::Ref({ObjectId::Next(), NodeId::Next()})});
  spec.id = TaskId::Next();
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  ASSERT_EQ(failed_.size(), 1u);
  EXPECT_EQ(failed_[0].second.code(), StatusCode::kNotFound);
  EXPECT_EQ(raylet->tasks_executed(), 0);
}

TEST_F(RayletTest, UnknownFunctionFails) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("mystery", {});
  spec.id = TaskId::Next();
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  ASSERT_EQ(failed_.size(), 1u);
  EXPECT_EQ(failed_[0].second.code(), StatusCode::kNotFound);
}

TEST_F(RayletTest, WrongReturnCountFails) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("echo", {TaskArg::Value(Buffer::FromString("x"))});
  spec.id = TaskId::Next();
  spec.num_returns = 2;  // echo produces 1
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  ASSERT_EQ(failed_.size(), 1u);
  EXPECT_EQ(failed_[0].second.code(), StatusCode::kInternal);
}

TEST_F(RayletTest, ChargesFixedComputeNanos) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("echo", {TaskArg::Value(Buffer())});
  spec.id = TaskId::Next();
  spec.fixed_compute_nanos = 123456;
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  EXPECT_EQ(clock_.total_nanos(), 123456);
}

TEST_F(RayletTest, ChargesCostModelByDefault) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("echo", {TaskArg::Value(Buffer::Zeros(1 << 20))});
  spec.id = TaskId::Next();
  spec.op_class = OpClass::kScan;
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  EXPECT_EQ(clock_.total_nanos(),
            CostModel::EstimateNanos(node_.device, OpClass::kScan, 1 << 20));
}

TEST_F(RayletTest, KilledRayletAbortsQueuedTasks) {
  auto raylet = MakeRaylet(1);
  // One long task occupies the worker, several queue behind it.
  ASSERT_TRUE(registry_.Register("block_20ms", [](TaskContext&, std::vector<Buffer>&)
                                       -> Result<std::vector<Buffer>> {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return std::vector<Buffer>{Buffer()};
  }).ok());
  TaskSpec blocker = Call("block_20ms", {});
  blocker.id = TaskId::Next();
  ASSERT_TRUE(raylet->Enqueue(blocker).ok());
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec = Call("echo", {TaskArg::Value(Buffer())});
    spec.id = TaskId::Next();
    ASSERT_TRUE(raylet->Enqueue(spec).ok());
  }
  raylet->Kill();
  EXPECT_TRUE(raylet->dead());
  AwaitOutcomes(4);
  MutexLock lock(mu_);
  // Everything after the kill aborts; the blocker may complete or abort
  // depending on timing.
  EXPECT_GE(failed_.size(), 3u);
  for (auto& [task, status] : failed_) {
    EXPECT_EQ(status.code(), StatusCode::kAborted);
  }
  EXPECT_FALSE(raylet->Enqueue(Call("echo", {})).ok());
}

TEST_F(RayletTest, WorkerGrowthIncreasesParallelism) {
  auto raylet = MakeRaylet(1);
  EXPECT_EQ(raylet->num_workers(), 1u);
  raylet->GrowWorkers(3);
  EXPECT_EQ(raylet->num_workers(), 4u);
  raylet->ShrinkWorkers(2);
  EXPECT_EQ(raylet->num_workers(), 2u);
}

TEST_F(RayletTest, ActorStatePersistsAcrossTasks) {
  // One worker: with several workers the actor serial mutex guarantees
  // mutual exclusion but neither run order nor completion-record order,
  // and this test asserts the accumulated state task by task.
  auto raylet = MakeRaylet(1);
  ASSERT_TRUE(registry_.Register("append_char", [](TaskContext& ctx, std::vector<Buffer>& args)
                                        -> Result<std::vector<Buffer>> {
    auto* s = static_cast<std::string*>(ctx.actor_state->get());
    s->append(args[0].AsStringView());
    return std::vector<Buffer>{Buffer::FromString(*s)};
  }).ok());
  ActorId actor = ActorId::Next();
  ASSERT_TRUE(raylet->CreateActor(actor, std::make_shared<std::string>()).ok());
  EXPECT_TRUE(raylet->HasActor(actor));
  EXPECT_EQ(raylet->CreateActor(actor, nullptr).code(), StatusCode::kAlreadyExists);

  for (const char* c : {"a", "b", "c"}) {
    TaskSpec spec = Call("append_char", {TaskArg::Value(Buffer::FromString(c))});
    spec.id = TaskId::Next();
    spec.actor = actor;
    ASSERT_TRUE(raylet->Enqueue(spec).ok());
  }
  AwaitOutcomes(3);
  MutexLock lock(mu_);
  ASSERT_EQ(completed_.size(), 3u);
  EXPECT_EQ(completed_[2].second[0].AsStringView(), "abc");
}

TEST_F(RayletTest, ActorTaskWithoutActorFails) {
  auto raylet = MakeRaylet();
  TaskSpec spec = Call("echo", {TaskArg::Value(Buffer())});
  spec.id = TaskId::Next();
  spec.actor = ActorId::Next();
  ASSERT_TRUE(raylet->Enqueue(spec).ok());
  AwaitOutcomes(1);
  ASSERT_EQ(failed_.size(), 1u);
  EXPECT_EQ(failed_[0].second.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace skadi
