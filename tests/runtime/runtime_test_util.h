// Shared fixtures for runtime tests: a small emulated cluster plus a
// registry of simple task bodies (echo / concat / int arithmetic / timed ops).
#ifndef TESTS_RUNTIME_RUNTIME_TEST_UTIL_H_
#define TESTS_RUNTIME_RUNTIME_TEST_UTIL_H_

#include <cstring>
#include <memory>

#include "src/common/logging.h"
#include "src/runtime/runtime.h"

namespace skadi {

inline Buffer I64Buffer(int64_t v) {
  BufferBuilder b;
  b.AppendI64(v);
  return b.Finish();
}

inline int64_t I64Of(const Buffer& buffer) {
  BufferReader r(buffer);
  return r.ReadI64();
}

// Registers the standard test functions on `registry`:
//   echo(x) -> x
//   concat(a, b) -> a+b
//   add_i64(a, b) -> int64 sum
//   inc_i64(a) -> a + 1
//   sum_all(xs...) -> int64 sum of all args
//   make_zeros [1 arg: int64 n] -> buffer of n zero bytes
//   fail_always -> kInternal
// Fixtures rebuild clusters against one long-lived registry, so a function
// may already be present; anything else is a hard failure.
inline void CheckRegistered(const Status& s) {
  SKADI_CHECK(s.ok() || s.code() == StatusCode::kAlreadyExists) << s.ToString();
}

inline void RegisterTestFunctions(FunctionRegistry& registry) {
  CheckRegistered(registry.Register("echo", [](TaskContext&, std::vector<Buffer>& args)
                                -> Result<std::vector<Buffer>> {
    if (args.size() != 1) {
      return Status::InvalidArgument("echo takes 1 arg");
    }
    return std::vector<Buffer>{args[0]};
  }));
  CheckRegistered(registry.Register("concat", [](TaskContext&, std::vector<Buffer>& args)
                                  -> Result<std::vector<Buffer>> {
    BufferBuilder b;
    for (const Buffer& a : args) {
      b.AppendBytes(a.data(), a.size());
    }
    return std::vector<Buffer>{b.Finish()};
  }));
  CheckRegistered(registry.Register("add_i64", [](TaskContext&, std::vector<Buffer>& args)
                                   -> Result<std::vector<Buffer>> {
    if (args.size() != 2) {
      return Status::InvalidArgument("add_i64 takes 2 args");
    }
    return std::vector<Buffer>{I64Buffer(I64Of(args[0]) + I64Of(args[1]))};
  }));
  CheckRegistered(registry.Register("inc_i64", [](TaskContext&, std::vector<Buffer>& args)
                                   -> Result<std::vector<Buffer>> {
    return std::vector<Buffer>{I64Buffer(I64Of(args[0]) + 1)};
  }));
  CheckRegistered(registry.Register("sum_all", [](TaskContext&, std::vector<Buffer>& args)
                                   -> Result<std::vector<Buffer>> {
    int64_t sum = 0;
    for (const Buffer& a : args) {
      sum += I64Of(a);
    }
    return std::vector<Buffer>{I64Buffer(sum)};
  }));
  CheckRegistered(registry.Register("make_zeros", [](TaskContext&, std::vector<Buffer>& args)
                                      -> Result<std::vector<Buffer>> {
    return std::vector<Buffer>{Buffer::Zeros(static_cast<size_t>(I64Of(args[0])))};
  }));
  CheckRegistered(registry.Register("fail_always", [](TaskContext&, std::vector<Buffer>&)
                                       -> Result<std::vector<Buffer>> {
    return Status::Internal("deliberate failure");
  }));
}

// Builds a TaskSpec for a one-return function call.
inline TaskSpec Call(const std::string& function, std::vector<TaskArg> args) {
  TaskSpec spec;
  spec.function = function;
  spec.args = std::move(args);
  spec.num_returns = 1;
  return spec;
}

}  // namespace skadi

#endif  // TESTS_RUNTIME_RUNTIME_TEST_UTIL_H_
