#include "src/ownership/ownership_table.h"

#include <atomic>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/clock.h"

namespace skadi {
namespace {

class OwnershipTableTest : public ::testing::Test {
 protected:
  OwnershipTableTest() : owner_(NodeId::Next()), table_(owner_) {}

  ObjectId Register() {
    ObjectId id = ObjectId::Next();
    EXPECT_TRUE(table_.RegisterObject(id, TaskId::Next()).ok());
    return id;
  }

  NodeId owner_;
  OwnershipTable table_;
};

TEST_F(OwnershipTableTest, RegisterStartsPending) {
  ObjectId id = Register();
  auto reply = table_.Resolve(id);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->state, ObjectState::kPending);
  EXPECT_FALSE(reply->location.has_value());
}

TEST_F(OwnershipTableTest, DuplicateRegisterFails) {
  ObjectId id = Register();
  EXPECT_EQ(table_.RegisterObject(id, TaskId::Next()).code(), StatusCode::kAlreadyExists);
}

TEST_F(OwnershipTableTest, MarkReadyRecordsLocationAndDevice) {
  ObjectId id = Register();
  NodeId loc = NodeId::Next();
  DeviceId dev = DeviceId::Next();
  auto consumers = table_.MarkReady(id, loc, 512, dev, 0xBEEF);
  ASSERT_TRUE(consumers.ok());
  EXPECT_TRUE(consumers->empty());

  auto reply = table_.Resolve(id);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->state, ObjectState::kReady);
  EXPECT_EQ(*reply->location, loc);
  EXPECT_EQ(reply->size_bytes, 512);
  EXPECT_EQ(reply->device, dev);
  EXPECT_EQ(reply->device_handle, 0xBEEFu);
}

TEST_F(OwnershipTableTest, ResolveUnknownFails) {
  EXPECT_EQ(table_.Resolve(ObjectId::Next()).status().code(), StatusCode::kNotFound);
}

TEST_F(OwnershipTableTest, ConsumersRegisteredWhilePendingReturnedOnReady) {
  ObjectId id = Register();
  ConsumerRegistration c1{TaskId::Next(), NodeId::Next(), DeviceId::Next()};
  ConsumerRegistration c2{TaskId::Next(), NodeId::Next(), DeviceId::Next()};
  auto r1 = table_.RegisterConsumer(id, c1);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);  // pending: parked
  ASSERT_TRUE(table_.RegisterConsumer(id, c2).ok());

  auto consumers = table_.MarkReady(id, NodeId::Next(), 1);
  ASSERT_TRUE(consumers.ok());
  ASSERT_EQ(consumers->size(), 2u);
  EXPECT_EQ((*consumers)[0].task, c1.task);
  EXPECT_EQ((*consumers)[1].task, c2.task);
}

TEST_F(OwnershipTableTest, ConsumerAfterReadyPushesImmediately) {
  ObjectId id = Register();
  ASSERT_TRUE(table_.MarkReady(id, NodeId::Next(), 1).ok());
  auto r = table_.RegisterConsumer(id, {TaskId::Next(), NodeId::Next(), DeviceId::Next()});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(OwnershipTableTest, NodeFailureMarksLastCopyLost) {
  ObjectId id = Register();
  NodeId loc = NodeId::Next();
  ASSERT_TRUE(table_.MarkReady(id, loc, 1).ok());
  auto lost = table_.OnNodeFailure(loc);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], id);
  EXPECT_EQ(table_.Resolve(id)->state, ObjectState::kLost);
}

TEST_F(OwnershipTableTest, ReplicaLocationSurvivesFailure) {
  ObjectId id = Register();
  NodeId loc1 = NodeId::Next();
  NodeId loc2 = NodeId::Next();
  ASSERT_TRUE(table_.MarkReady(id, loc1, 1).ok());
  ASSERT_TRUE(table_.AddLocation(id, loc2).ok());
  auto lost = table_.OnNodeFailure(loc1);
  EXPECT_TRUE(lost.empty());
  auto reply = table_.Resolve(id);
  EXPECT_EQ(reply->state, ObjectState::kReady);
  EXPECT_EQ(*reply->location, loc2);
}

TEST_F(OwnershipTableTest, ReconstructionReArmsLostObject) {
  ObjectId id = Register();
  NodeId loc = NodeId::Next();
  ASSERT_TRUE(table_.MarkReady(id, loc, 1).ok());
  table_.OnNodeFailure(loc);
  TaskId new_task = TaskId::Next();
  ASSERT_TRUE(table_.MarkPendingForReconstruction(id, new_task).ok());
  EXPECT_EQ(table_.Resolve(id)->state, ObjectState::kPending);
  EXPECT_EQ(*table_.ProducedBy(id), new_task);
}

TEST_F(OwnershipTableTest, ReconstructionRequiresLostState) {
  ObjectId id = Register();
  EXPECT_EQ(table_.MarkPendingForReconstruction(id, TaskId::Next()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(OwnershipTableTest, WaitReadyBlocksUntilMarkReady) {
  ObjectId id = Register();
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)table_.MarkReady(id, NodeId::Next(), 1);  // asserts don't work off-thread
  });
  auto state = table_.WaitReady(id, 2000);
  producer.join();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, ObjectState::kReady);
}

TEST_F(OwnershipTableTest, WaitReadyTimesOut) {
  ObjectId id = Register();
  auto state = table_.WaitReady(id, 20);
  EXPECT_EQ(state.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(OwnershipTableTest, WaitReadyWakesOnLoss) {
  ObjectId id = Register();
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(table_.MarkLost(id).ok());
  });
  auto state = table_.WaitReady(id, 2000);
  killer.join();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, ObjectState::kLost);
}

TEST_F(OwnershipTableTest, RefCountingRemovesAtZero) {
  ObjectId id = Register();
  ASSERT_TRUE(table_.IncRef(id).ok());  // count = 2
  auto first = table_.DecRef(id);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  auto second = table_.DecRef(id);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*second);
  EXPECT_FALSE(table_.Contains(id));
}

TEST_F(OwnershipTableTest, StateOrWatchReturnsStateWithoutWatcherWhenResolved) {
  ObjectId id = Register();
  ASSERT_TRUE(table_.MarkReady(id, NodeId::Next(), 1).ok());
  bool fired = false;
  auto state = table_.StateOrWatch(id, [&] { fired = true; });
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, ObjectState::kReady);
  // Non-pending: the watcher is dropped, never armed.
  EXPECT_FALSE(fired);
}

TEST_F(OwnershipTableTest, StateOrWatchUnknownObjectIsNotFound) {
  auto state = table_.StateOrWatch(ObjectId::Next(), [] {});
  EXPECT_EQ(state.status().code(), StatusCode::kNotFound);
}

TEST_F(OwnershipTableTest, StateOrWatchFiresOnceOnMarkReady) {
  ObjectId id = Register();
  int fires = 0;
  auto state = table_.StateOrWatch(id, [&] { ++fires; });
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, ObjectState::kPending);
  EXPECT_EQ(fires, 0);
  ASSERT_TRUE(table_.MarkReady(id, NodeId::Next(), 1).ok());
  EXPECT_EQ(fires, 1);
  // A later state change must not re-fire a consumed watcher.
  ASSERT_TRUE(table_.MarkLost(id).ok());
  EXPECT_EQ(fires, 1);
}

TEST_F(OwnershipTableTest, StateOrWatchFiresOnLossAndRelease) {
  ObjectId lost = Register();
  int lost_fires = 0;
  ASSERT_TRUE(table_.StateOrWatch(lost, [&] { ++lost_fires; }).ok());
  ASSERT_TRUE(table_.MarkLost(lost).ok());
  EXPECT_EQ(lost_fires, 1);

  ObjectId released = Register();
  int release_fires = 0;
  ASSERT_TRUE(table_.StateOrWatch(released, [&] { ++release_fires; }).ok());
  auto removed = table_.DecRef(released);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  // Release fires watchers so parked waiters re-probe and see NotFound.
  EXPECT_EQ(release_fires, 1);
  EXPECT_EQ(table_.StateOrWatch(released, [] {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(OwnershipTableTest, WatchersRunOnReactorWhenWired) {
  Reactor reactor("test");
  table_.set_reactor(&reactor);
  ObjectId id = Register();
  auto ev = std::make_shared<Event>();
  ASSERT_TRUE(table_.StateOrWatch(id, [ev] { ev->Set(); }).ok());
  ASSERT_TRUE(table_.MarkReady(id, NodeId::Next(), 1).ok());
  // The watcher was posted, not run inline on the MarkReady thread.
  EXPECT_FALSE(ev->is_set());
  EXPECT_TRUE(reactor.BlockOn(*ev));
}

TEST_F(OwnershipTableTest, ObjectsInStateFilters) {
  ObjectId pending = Register();
  ObjectId ready = Register();
  ASSERT_TRUE(table_.MarkReady(ready, NodeId::Next(), 1).ok());
  auto pendings = table_.ObjectsInState(ObjectState::kPending);
  auto readys = table_.ObjectsInState(ObjectState::kReady);
  ASSERT_EQ(pendings.size(), 1u);
  EXPECT_EQ(pendings[0], pending);
  ASSERT_EQ(readys.size(), 1u);
  EXPECT_EQ(readys[0], ready);
  EXPECT_EQ(table_.size(), 2u);
}

// Teardown race: destroy a reactor-wired table while half its watchers are
// already queued on the reactor and the other half are still registered.
// Queued continuations own their state via a captured shared_ptr (the
// DESIGN.md §14 idiom) so they may run after the table dies; never-fired
// watchers must be dropped without running. ASan flags any continuation
// that touches freed table state.
TEST_F(OwnershipTableTest, TeardownWithQueuedAndUnfiredWatchers) {
  Reactor reactor("teardown");
  auto fired = std::make_shared<std::atomic<int>>(0);
  {
    OwnershipTable table(NodeId::Next());
    table.set_reactor(&reactor);
    for (int i = 0; i < 8; ++i) {
      ObjectId id = ObjectId::Next();
      ASSERT_TRUE(table.RegisterObject(id, TaskId::Next()).ok());
      ASSERT_TRUE(
          table.StateOrWatch(id, [fired] { fired->fetch_add(1); }).ok());
      if (i % 2 == 0) {
        // Queues the watcher continuation on the reactor.
        ASSERT_TRUE(table.MarkReady(id, NodeId::Next(), 1).ok());
      }
    }
  }  // table destroyed: 4 watchers queued on the reactor, 4 never fired
  const int64_t deadline = NowNanos() + 1'000'000'000;
  while (NowNanos() < deadline && fired->load() < 4) {
    reactor.PollOnce();
  }
  EXPECT_EQ(fired->load(), 4);  // queued ones run; dropped ones never do
}

}  // namespace
}  // namespace skadi
