// Concurrency hammer for OwnershipTable: many threads drive the full record
// lifecycle against one table at once. Run under -DSKADI_SANITIZE=thread to
// turn any data race into a test failure; under the default build it still
// checks that concurrent mutation preserves the table's invariants.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/ownership/ownership_table.h"

namespace skadi {
namespace {

constexpr int kThreads = 8;
constexpr int kObjectsPerThread = 64;

TEST(OwnershipHammerTest, ConcurrentLifecycles) {
  OwnershipTable table(NodeId(1));
  std::atomic<int> ready_count{0};

  auto worker = [&](int tid) {
    NodeId location(100 + tid);
    for (int i = 0; i < kObjectsPerThread; ++i) {
      ObjectId id = ObjectId::Next();
      TaskId task = TaskId::Next();
      ASSERT_TRUE(table.RegisterObject(id, task).ok());

      // Consumers registered while pending must be handed back by MarkReady.
      auto pre = table.RegisterConsumer(id, {TaskId::Next(), location, DeviceId()});
      ASSERT_TRUE(pre.ok());
      EXPECT_FALSE(*pre);  // still pending: caller must NOT push yet

      auto consumers = table.MarkReady(id, location, 64);
      ASSERT_TRUE(consumers.ok());
      EXPECT_EQ(consumers->size(), 1u);
      ready_count.fetch_add(1);

      ASSERT_TRUE(table.AddLocation(id, NodeId(200 + tid)).ok());

      auto reply = table.Resolve(id);
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply->state, ObjectState::kReady);
      ASSERT_TRUE(reply->location.has_value());

      // Ref-count churn: record survives until the final DecRef.
      ASSERT_TRUE(table.IncRef(id).ok());
      auto first = table.DecRef(id);
      ASSERT_TRUE(first.ok());
      EXPECT_FALSE(*first);
      auto last = table.DecRef(id);
      ASSERT_TRUE(last.ok());
      EXPECT_TRUE(*last);
      EXPECT_FALSE(table.Contains(id));
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(ready_count.load(), kThreads * kObjectsPerThread);
  EXPECT_EQ(table.size(), 0u);
}

TEST(OwnershipHammerTest, ConcurrentFailureAndRecovery) {
  OwnershipTable table(NodeId(1));
  const NodeId flaky(7);
  const NodeId stable(8);

  // Writers keep producing objects on the flaky node; one thread keeps
  // failing it; recoverers re-arm whatever went lost. The table must stay
  // internally consistent (every record pending, ready, or lost — never
  // ready with zero locations).
  std::atomic<bool> stop{false};
  std::atomic<int> produced{0};
  std::vector<ObjectId> ids(kThreads * kObjectsPerThread);

  auto producer = [&](int tid) {
    for (int i = 0; i < kObjectsPerThread; ++i) {
      ObjectId id = ObjectId::Next();
      ids[tid * kObjectsPerThread + i] = id;
      ASSERT_TRUE(table.RegisterObject(id, TaskId::Next()).ok());
      ASSERT_TRUE(table.MarkReady(id, flaky, 32).ok());
      produced.fetch_add(1);
    }
  };
  auto failer = [&] {
    while (!stop.load()) {
      std::vector<ObjectId> lost = table.OnNodeFailure(flaky);
      for (ObjectId id : lost) {
        // Concurrent DecRef/recovery may have removed or re-armed it; any
        // status outcome is fine, the table just must not corrupt itself.
        // analyze:allow status-propagation (any status is fine under the race)
        Status s = table.MarkPendingForReconstruction(id, TaskId::Next());
        if (s.ok()) {
          ASSERT_TRUE(table.MarkReady(id, stable, 32).ok());
        }
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(failer);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(producer, t);
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[0].join();

  EXPECT_EQ(produced.load(), kThreads * kObjectsPerThread);
  // Quiesced: every surviving record resolves without crashing, and ready
  // records report a location.
  int ready = 0, lost = 0;
  for (ObjectId id : ids) {
    if (!table.Contains(id)) continue;
    auto reply = table.Resolve(id);
    ASSERT_TRUE(reply.ok());
    if (reply->state == ObjectState::kReady) {
      EXPECT_TRUE(reply->location.has_value());
      ++ready;
    } else if (reply->state == ObjectState::kLost) {
      ++lost;
    }
  }
  EXPECT_EQ(ready + lost, kThreads * kObjectsPerThread);
}

// Watch/ready storm across shard counts: watcher threads race StateOrWatch
// against marker threads flipping objects ready. Every watcher that saw
// kPending (and therefore registered) must fire exactly once; watchers that
// saw a terminal state must not fire. Run at 1 shard (degenerate single-lock
// table) and 8 shards (default) so the sharded path and the baseline obey
// the same contract under TSan.
class ShardedWatchStormTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedWatchStormTest, WatchersFireExactlyOnce) {
  const int shards = GetParam();
  MetricsRegistry metrics;
  OwnershipTable table(NodeId(1), shards);
  table.set_metrics(&metrics);
  ASSERT_EQ(table.num_shards(), shards);

  constexpr int kObjects = 256;
  std::vector<ObjectId> ids;
  for (int i = 0; i < kObjects; ++i) {
    ObjectId id = ObjectId::Next();
    ids.push_back(id);
    ASSERT_TRUE(table.RegisterObject(id, TaskId::Next()).ok());
  }

  std::atomic<int> registered{0};  // watchers that saw kPending
  std::atomic<int> fired{0};       // watcher continuations actually run
  std::atomic<int> terminal{0};    // watchers that saw ready (dropped unrun)

  auto watcher = [&] {
    for (ObjectId id : ids) {
      auto state = table.StateOrWatch(id, [&fired] { fired.fetch_add(1); });
      ASSERT_TRUE(state.ok());
      if (*state == ObjectState::kPending) {
        registered.fetch_add(1);
      } else {
        ASSERT_EQ(*state, ObjectState::kReady);
        terminal.fetch_add(1);
      }
    }
  };
  auto marker = [&](int tid) {
    // Stripe the markers so every object is marked ready exactly once.
    for (int i = tid; i < kObjects; i += kThreads / 2) {
      ASSERT_TRUE(table.MarkReady(ids[static_cast<size_t>(i)], NodeId(9), 64).ok());
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads / 2; ++t) threads.emplace_back(watcher);
  for (int t = 0; t < kThreads / 2; ++t) threads.emplace_back(marker, t);
  for (auto& t : threads) t.join();

  // No reactor wired: watchers ran inline on the marking thread, so by join
  // time every registered watcher has fired — exactly once each.
  EXPECT_EQ(fired.load(), registered.load());
  EXPECT_EQ(registered.load() + terminal.load(), (kThreads / 2) * kObjects);

  // The contention meter is wired: under the single-lock table the storm
  // above virtually guarantees collisions; sharded it merely must not crash.
  int64_t waits = metrics.GetCounter("ownership.shard_lock_waits").value();
  EXPECT_GE(waits, 0);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedWatchStormTest,
                         ::testing::Values(1, 8));

}  // namespace
}  // namespace skadi
