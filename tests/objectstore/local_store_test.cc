#include "src/objectstore/local_store.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

Buffer MakeData(size_t size, char fill = 'x') {
  return Buffer(std::vector<uint8_t>(size, static_cast<uint8_t>(fill)));
}

TEST(LocalStoreTest, PutGetRoundTrip) {
  LocalObjectStore store(DeviceId::Next(), 1024);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(store.Put(id, Buffer::FromString("hello")).ok());
  auto r = store.Get(id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsStringView(), "hello");
  EXPECT_TRUE(store.Contains(id));
  EXPECT_EQ(store.num_objects(), 1u);
  EXPECT_EQ(store.used_bytes(), 5);
}

TEST(LocalStoreTest, DuplicatePutRejected) {
  LocalObjectStore store(DeviceId::Next(), 1024);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(store.Put(id, MakeData(10)).ok());
  EXPECT_EQ(store.Put(id, MakeData(10)).code(), StatusCode::kAlreadyExists);
}

TEST(LocalStoreTest, GetMissingFails) {
  LocalObjectStore store(DeviceId::Next(), 1024);
  EXPECT_EQ(store.Get(ObjectId::Next()).status().code(), StatusCode::kNotFound);
}

TEST(LocalStoreTest, DeleteFreesSpace) {
  LocalObjectStore store(DeviceId::Next(), 1024);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(store.Put(id, MakeData(100)).ok());
  EXPECT_EQ(store.used_bytes(), 100);
  ASSERT_TRUE(store.Delete(id).ok());
  EXPECT_EQ(store.used_bytes(), 0);
  EXPECT_FALSE(store.Contains(id));
  EXPECT_EQ(store.Delete(id).code(), StatusCode::kNotFound);
}

TEST(LocalStoreTest, ObjectLargerThanCapacityRejected) {
  LocalObjectStore store(DeviceId::Next(), 100);
  EXPECT_EQ(store.Put(ObjectId::Next(), MakeData(101)).code(),
            StatusCode::kOutOfMemory);
}

TEST(LocalStoreTest, FullStoreWithoutSpillHandlerEvictsDropping) {
  LocalObjectStore store(DeviceId::Next(), 100);
  ObjectId a = ObjectId::Next();
  ObjectId b = ObjectId::Next();
  ASSERT_TRUE(store.Put(a, MakeData(60)).ok());
  ASSERT_TRUE(store.Put(b, MakeData(60)).ok());  // evicts a (no handler = drop)
  EXPECT_FALSE(store.Contains(a));
  EXPECT_TRUE(store.Contains(b));
  EXPECT_EQ(store.evictions(), 1);
}

TEST(LocalStoreTest, LruOrderRespectsAccess) {
  LocalObjectStore store(DeviceId::Next(), 100);
  ObjectId a = ObjectId::Next();
  ObjectId b = ObjectId::Next();
  ObjectId c = ObjectId::Next();
  ASSERT_TRUE(store.Put(a, MakeData(40)).ok());
  ASSERT_TRUE(store.Put(b, MakeData(40)).ok());
  ASSERT_TRUE(store.Get(a).ok());   // refresh a; b is now LRU
  ASSERT_TRUE(store.Put(c, MakeData(40)).ok());       // must evict b
  EXPECT_TRUE(store.Contains(a));
  EXPECT_FALSE(store.Contains(b));
  EXPECT_TRUE(store.Contains(c));
}

TEST(LocalStoreTest, PinnedObjectsNeverEvicted) {
  LocalObjectStore store(DeviceId::Next(), 100);
  ObjectId a = ObjectId::Next();
  ASSERT_TRUE(store.Put(a, MakeData(60)).ok());
  ASSERT_TRUE(store.Pin(a).ok());
  ObjectId b = ObjectId::Next();
  EXPECT_EQ(store.Put(b, MakeData(60)).code(), StatusCode::kOutOfMemory);
  ASSERT_TRUE(store.Unpin(a).ok());
  EXPECT_TRUE(store.Put(b, MakeData(60)).ok());
  EXPECT_FALSE(store.Contains(a));
}

TEST(LocalStoreTest, UnpinWithoutPinFails) {
  LocalObjectStore store(DeviceId::Next(), 100);
  ObjectId a = ObjectId::Next();
  ASSERT_TRUE(store.Put(a, MakeData(10)).ok());
  EXPECT_EQ(store.Unpin(a).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Pin(ObjectId::Next()).code(), StatusCode::kNotFound);
}

TEST(LocalStoreTest, SpillHandlerReceivesVictims) {
  LocalObjectStore store(DeviceId::Next(), 100);
  std::vector<ObjectId> spilled;
  store.set_spill_handler([&spilled](ObjectId id, const Buffer& data) {
    spilled.push_back(id);
    EXPECT_EQ(data.size(), 60u);
    return true;
  });
  ObjectId a = ObjectId::Next();
  ASSERT_TRUE(store.Put(a, MakeData(60)).ok());
  ASSERT_TRUE(store.Put(ObjectId::Next(), MakeData(60)).ok());
  ASSERT_EQ(spilled.size(), 1u);
  EXPECT_EQ(spilled[0], a);
  EXPECT_EQ(store.spilled_bytes(), 60);
}

TEST(LocalStoreTest, SpillRejectionCausesOom) {
  LocalObjectStore store(DeviceId::Next(), 100);
  store.set_spill_handler([](ObjectId, const Buffer&) { return false; });
  ASSERT_TRUE(store.Put(ObjectId::Next(), MakeData(60)).ok());
  EXPECT_EQ(store.Put(ObjectId::Next(), MakeData(60)).code(), StatusCode::kOutOfMemory);
}

TEST(LocalStoreTest, ClearDropsEverything) {
  LocalObjectStore store(DeviceId::Next(), 1000);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Put(ObjectId::Next(), MakeData(10)).ok());
  }
  EXPECT_EQ(store.num_objects(), 5u);
  store.Clear();
  EXPECT_EQ(store.num_objects(), 0u);
  EXPECT_EQ(store.used_bytes(), 0);
}

TEST(LocalStoreTest, ListReturnsAllIds) {
  LocalObjectStore store(DeviceId::Next(), 1000);
  ObjectId a = ObjectId::Next();
  ObjectId b = ObjectId::Next();
  ASSERT_TRUE(store.Put(a, MakeData(1)).ok());
  ASSERT_TRUE(store.Put(b, MakeData(1)).ok());
  auto ids = store.List();
  EXPECT_EQ(ids.size(), 2u);
}

TEST(LocalStoreTest, MultipleEvictionsToFitLargeObject) {
  LocalObjectStore store(DeviceId::Next(), 100);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Put(ObjectId::Next(), MakeData(25)).ok());
  }
  ASSERT_TRUE(store.Put(ObjectId::Next(), MakeData(80)).ok());
  EXPECT_GE(store.evictions(), 3);
  EXPECT_LE(store.used_bytes(), 100);
}

}  // namespace
}  // namespace skadi
