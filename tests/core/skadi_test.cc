// End-to-end tests of the Skadi facade: every declarative frontend runs
// through FlowGraph lowering onto the emulated disaggregated cluster and is
// checked against a single-node reference computation.
#include "src/core/skadi.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/format/serde.h"

namespace skadi {
namespace {

class SkadiTest : public ::testing::Test {
 protected:
  void Start(SkadiOptions options = DefaultOptions()) {
    auto skadi = Skadi::Start(options);
    ASSERT_TRUE(skadi.ok()) << skadi.status().ToString();
    skadi_ = std::move(skadi).value();
  }

  static SkadiOptions DefaultOptions() {
    SkadiOptions options;
    options.cluster.racks = 2;
    options.cluster.servers_per_rack = 2;
    options.cluster.workers_per_server = 2;
    options.default_parallelism = 2;
    return options;
  }

  RecordBatch SalesBatch(int rows, uint64_t seed = 7) {
    Rng rng(seed);
    ColumnBuilder regions(DataType::kString);
    ColumnBuilder amounts(DataType::kInt64);
    ColumnBuilder prices(DataType::kFloat64);
    const std::vector<std::string> kRegions = {"east", "west", "north", "south"};
    for (int i = 0; i < rows; ++i) {
      regions.AppendString(kRegions[rng.NextBounded(kRegions.size())]);
      amounts.AppendInt64(static_cast<int64_t>(rng.NextBounded(100)));
      prices.AppendFloat64(rng.NextDouble() * 10.0);
    }
    Schema schema({{"region", DataType::kString},
                   {"amount", DataType::kInt64},
                   {"price", DataType::kFloat64}});
    auto batch = RecordBatch::Make(schema, {regions.Finish(), amounts.Finish(),
                                            prices.Finish()});
    return std::move(batch).value();
  }

  std::unique_ptr<Skadi> skadi_;
};

TEST_F(SkadiTest, RegisterTableSpreadsPartitions) {
  Start();
  ASSERT_TRUE(skadi_->RegisterTable("sales", SalesBatch(100), 4).ok());
  EXPECT_TRUE(skadi_->HasTable("sales"));
  auto partitions = skadi_->TablePartitions("sales");
  ASSERT_EQ(partitions.size(), 4u);
  // Partitions live on at least two distinct nodes.
  std::set<NodeId> homes;
  for (const ObjectRef& ref : partitions) {
    for (NodeId n : skadi_->cache().Locations(ref.id)) {
      homes.insert(n);
    }
  }
  EXPECT_GE(homes.size(), 2u);
}

TEST_F(SkadiTest, DuplicateTableRejected) {
  Start();
  ASSERT_TRUE(skadi_->RegisterTable("t", SalesBatch(10)).ok());
  EXPECT_EQ(skadi_->RegisterTable("t", SalesBatch(10)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SkadiTest, SqlSelectWhere) {
  Start();
  RecordBatch sales = SalesBatch(200);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto result = skadi_->Sql("SELECT region, amount FROM sales WHERE amount > 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto expected = FilterBatch(
      sales, *Expr::Binary(BinaryOp::kGt, Expr::Col("amount"), Expr::Int(50)));
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->num_rows(), expected->num_rows());
  EXPECT_EQ(result->num_columns(), 2u);
}

TEST_F(SkadiTest, SqlGroupByMatchesReference) {
  Start();
  RecordBatch sales = SalesBatch(400);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto result = skadi_->Sql(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(price) AS ap "
      "FROM sales GROUP BY region ORDER BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto reference = GroupAggregateBatch(sales, {"region"},
                                       {{AggKind::kCount, "*", "n"},
                                        {AggKind::kSum, "amount", "total"},
                                        {AggKind::kMean, "price", "ap"}});
  ASSERT_TRUE(reference.ok());
  auto sorted_ref = SortBatch(*reference, {{"region", true}});
  ASSERT_TRUE(sorted_ref.ok());

  ASSERT_EQ(result->num_rows(), sorted_ref->num_rows());
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    EXPECT_EQ(result->ColumnByName("region")->StringAt(i),
              sorted_ref->ColumnByName("region")->StringAt(i));
    EXPECT_EQ(result->ColumnByName("n")->Int64At(i),
              sorted_ref->ColumnByName("n")->Int64At(i));
    EXPECT_EQ(result->ColumnByName("total")->Int64At(i),
              sorted_ref->ColumnByName("total")->Int64At(i));
    EXPECT_NEAR(result->ColumnByName("ap")->Float64At(i),
                sorted_ref->ColumnByName("ap")->Float64At(i), 1e-9);
  }
}

TEST_F(SkadiTest, SqlGlobalAggregate) {
  Start();
  RecordBatch sales = SalesBatch(300);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto result = skadi_->Sql("SELECT COUNT(*) AS n, SUM(amount) AS s FROM sales");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->ColumnByName("n")->Int64At(0), 300);

  auto reference =
      GroupAggregateBatch(sales, {}, {{AggKind::kSum, "amount", "s"}});
  EXPECT_EQ(result->ColumnByName("s")->Int64At(0),
            reference->ColumnByName("s")->Int64At(0));
}

TEST_F(SkadiTest, SqlJoin) {
  Start();
  RecordBatch sales = SalesBatch(100);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());

  Schema dim_schema({{"name", DataType::kString}, {"zone", DataType::kInt64}});
  auto dims = RecordBatch::Make(
      dim_schema, {Column::MakeString({"east", "west"}), Column::MakeInt64({1, 2})});
  ASSERT_TRUE(skadi_->RegisterTable("dims", *dims, 1).ok());

  auto result = skadi_->Sql(
      "SELECT region, zone, amount FROM sales JOIN dims ON region = name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto reference = HashJoinBatch(sales, *dims, {"region"}, {"name"});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result->num_rows(), reference->num_rows());
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    std::string_view region = result->ColumnByName("region")->StringAt(i);
    int64_t zone = result->ColumnByName("zone")->Int64At(i);
    EXPECT_EQ(zone, region == "east" ? 1 : 2);
  }
}

TEST_F(SkadiTest, SqlOrderByLimit) {
  Start();
  RecordBatch sales = SalesBatch(100);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto result =
      skadi_->Sql("SELECT amount FROM sales ORDER BY amount DESC LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 5);
  for (int64_t i = 1; i < 5; ++i) {
    EXPECT_GE(result->column(0).Int64At(i - 1), result->column(0).Int64At(i));
  }
}

TEST_F(SkadiTest, SqlHaving) {
  Start();
  RecordBatch sales = SalesBatch(400);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto all = skadi_->Sql("SELECT region, COUNT(*) AS n FROM sales GROUP BY region");
  ASSERT_TRUE(all.ok());
  auto filtered = skadi_->Sql(
      "SELECT region, COUNT(*) AS n FROM sales GROUP BY region HAVING n > 90");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_LE(filtered->num_rows(), all->num_rows());
  for (int64_t i = 0; i < filtered->num_rows(); ++i) {
    EXPECT_GT(filtered->ColumnByName("n")->Int64At(i), 90);
  }
}

TEST_F(SkadiTest, SqlMissingTableFails) {
  Start();
  auto result = skadi_->Sql("SELECT * FROM ghosts");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SkadiTest, SqlUnoptimizedMatchesOptimized) {
  SkadiOptions unopt = DefaultOptions();
  unopt.optimize_graph = false;
  Start(unopt);
  RecordBatch sales = SalesBatch(150);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto result = skadi_->Sql(
      "SELECT region, SUM(amount) AS s FROM sales WHERE amount > 10 GROUP BY region "
      "ORDER BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  Start();  // fresh optimized instance
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());
  auto optimized = skadi_->Sql(
      "SELECT region, SUM(amount) AS s FROM sales WHERE amount > 10 GROUP BY region "
      "ORDER BY region");
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  ASSERT_EQ(result->num_rows(), optimized->num_rows());
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    EXPECT_EQ(result->ColumnByName("s")->Int64At(i),
              optimized->ColumnByName("s")->Int64At(i));
  }
}

TEST_F(SkadiTest, MapReduceWordCountStyle) {
  Start();
  // "Word count": map projects (region, 1), reduce sums.
  ASSERT_TRUE(skadi_->registry().Register(
      "wc_map", [](TaskContext&, std::vector<Buffer>& args) -> Result<std::vector<Buffer>> {
        SKADI_ASSIGN_OR_RETURN(RecordBatch batch, DeserializeBatchIpc(args[0]));
        SKADI_ASSIGN_OR_RETURN(
            RecordBatch out,
            ProjectBatch(batch, {{Expr::Col("region"), "word"}, {Expr::Int(1), "one"}}));
        return std::vector<Buffer>{SerializeBatchIpc(out)};
      }).ok());
  ASSERT_TRUE(skadi_->registry().Register(
      "wc_reduce",
      [](TaskContext&, std::vector<Buffer>& args) -> Result<std::vector<Buffer>> {
        SKADI_ASSIGN_OR_RETURN(RecordBatch batch, DeserializeBatchIpc(args[0]));
        SKADI_ASSIGN_OR_RETURN(
            RecordBatch out,
            GroupAggregateBatch(batch, {"word"}, {{AggKind::kSum, "one", "count"}}));
        return std::vector<Buffer>{SerializeBatchIpc(out)};
      }).ok());

  RecordBatch sales = SalesBatch(200);
  ASSERT_TRUE(skadi_->RegisterTable("sales", sales).ok());

  MapReduceJob job;
  job.mapper = "wc_map";
  job.reducer = "wc_reduce";
  job.shuffle_keys = {"word"};
  auto result = skadi_->MapReduce(job, "sales");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto reference = GroupAggregateBatch(
      sales, {"region"}, {{AggKind::kCount, "*", "count"}});
  EXPECT_EQ(result->num_rows(), reference->num_rows());
  int64_t total = 0;
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    total += result->ColumnByName("count")->Int64At(i);
  }
  EXPECT_EQ(total, 200);
}

TEST_F(SkadiTest, TrainLinearModelRecoversWeights) {
  Start();
  // y = 3*x0 - 2*x1 + 1 with no noise: gradient descent must converge.
  Rng rng(11);
  ColumnBuilder x0(DataType::kFloat64);
  ColumnBuilder x1(DataType::kFloat64);
  ColumnBuilder y(DataType::kFloat64);
  for (int i = 0; i < 256; ++i) {
    double a = rng.NextDouble() * 2 - 1;
    double b = rng.NextDouble() * 2 - 1;
    x0.AppendFloat64(a);
    x1.AppendFloat64(b);
    y.AppendFloat64(3 * a - 2 * b + 1);
  }
  Schema schema({{"x0", DataType::kFloat64},
                 {"x1", DataType::kFloat64},
                 {"y", DataType::kFloat64}});
  auto data = RecordBatch::Make(schema, {x0.Finish(), x1.Finish(), y.Finish()});
  ASSERT_TRUE(skadi_->RegisterTable("train", *data, 4).ok());

  MlTrainOptions options;
  options.epochs = 200;
  options.learning_rate = 0.5;
  auto model = skadi_->TrainModel("train", {"x0", "x1"}, "y", options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  EXPECT_NEAR(model->weights.At(0, 0), 3.0, 0.1);
  EXPECT_NEAR(model->weights.At(1, 0), -2.0, 0.1);
  EXPECT_NEAR(model->weights.At(2, 0), 1.0, 0.1);
  // Loss decreases.
  ASSERT_GE(model->loss_curve.size(), 2u);
  EXPECT_LT(model->loss_curve.back(), model->loss_curve.front());
}

TEST_F(SkadiTest, PageRankOnStarGraph) {
  Start();
  // Star: all point to vertex 0 => vertex 0 has the highest rank.
  ColumnBuilder src(DataType::kInt64);
  ColumnBuilder dst(DataType::kInt64);
  for (int64_t v = 1; v <= 6; ++v) {
    src.AppendInt64(v);
    dst.AppendInt64(0);
    // Back edges so nothing dangles.
    src.AppendInt64(0);
    dst.AppendInt64(v);
  }
  Schema schema({{"src", DataType::kInt64}, {"dst", DataType::kInt64}});
  auto edges = RecordBatch::Make(schema, {src.Finish(), dst.Finish()});
  ASSERT_TRUE(skadi_->RegisterTable("edges", *edges, 2).ok());

  PageRankOptions options;
  options.iterations = 15;
  auto ranks = skadi_->PageRank("edges", options);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();
  ASSERT_EQ(ranks->num_rows(), 7);

  double rank0 = 0;
  double sum = 0;
  double max_other = 0;
  for (int64_t i = 0; i < ranks->num_rows(); ++i) {
    double r = ranks->ColumnByName("rank")->Float64At(i);
    sum += r;
    if (ranks->ColumnByName("vertex")->Int64At(i) == 0) {
      rank0 = r;
    } else {
      max_other = std::max(max_other, r);
    }
  }
  EXPECT_GT(rank0, 2 * max_other);
  EXPECT_NEAR(sum, 1.0, 0.01);  // ranks form a distribution
}

TEST_F(SkadiTest, ConnectedComponentsTwoIslands) {
  Start();
  // Components {0,1,2} and {10,11}.
  ColumnBuilder src(DataType::kInt64);
  ColumnBuilder dst(DataType::kInt64);
  auto edge = [&](int64_t a, int64_t b) {
    src.AppendInt64(a);
    dst.AppendInt64(b);
  };
  edge(0, 1);
  edge(1, 2);
  edge(10, 11);
  Schema schema({{"src", DataType::kInt64}, {"dst", DataType::kInt64}});
  auto edges = RecordBatch::Make(schema, {src.Finish(), dst.Finish()});
  ASSERT_TRUE(skadi_->RegisterTable("edges", *edges, 1).ok());

  auto cc = skadi_->ConnectedComponents("edges");
  ASSERT_TRUE(cc.ok()) << cc.status().ToString();
  std::map<int64_t, int64_t> component;
  for (int64_t i = 0; i < cc->num_rows(); ++i) {
    component[cc->ColumnByName("vertex")->Int64At(i)] =
        cc->ColumnByName("component")->Int64At(i);
  }
  EXPECT_EQ(component[0], 0);
  EXPECT_EQ(component[1], 0);
  EXPECT_EQ(component[2], 0);
  EXPECT_EQ(component[10], 10);
  EXPECT_EQ(component[11], 10);
}

TEST_F(SkadiTest, StatsReflectActivity) {
  Start();
  ASSERT_TRUE(skadi_->RegisterTable("sales", SalesBatch(100)).ok());
  auto result = skadi_->Sql("SELECT COUNT(*) AS n FROM sales");
  ASSERT_TRUE(result.ok());
  SkadiStats stats = skadi_->GetStats();
  EXPECT_GT(stats.tasks_submitted, 0);
  EXPECT_GT(stats.tasks_completed, 0);
  EXPECT_GT(stats.modelled_nanos, 0);
}

TEST_F(SkadiTest, ExplainShowsAllThreeTiers) {
  Start();
  ASSERT_TRUE(skadi_->RegisterTable("sales", SalesBatch(50)).ok());
  auto text = skadi_->Explain(
      "SELECT region, SUM(amount) AS s FROM sales WHERE amount > 5 "
      "GROUP BY region ORDER BY region");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("== declaration =="), std::string::npos);
  EXPECT_NE(text->find("== logical graph =="), std::string::npos);
  EXPECT_NE(text->find("== physical sharded graph =="), std::string::npos);
  EXPECT_NE(text->find("shuffle"), std::string::npos);   // keyed edge survives
  EXPECT_NE(text->find("rel.aggregate"), std::string::npos);  // vertex IR shown
  EXPECT_NE(text->find(" x2"), std::string::npos);       // parallelism subscript
  // Explain must not execute anything.
  EXPECT_EQ(skadi_->GetStats().tasks_submitted, 0);
}

TEST_F(SkadiTest, AdaptiveParallelismSizesFromData) {
  SkadiOptions options = DefaultOptions();
  options.adaptive_parallelism = true;
  options.adaptive_shard_bytes = 4 * 1024;  // tiny shards for the test
  options.max_parallelism = 4;
  Start(options);

  // ~22 KiB of data => ceil(22/4) = 6, clamped to max_parallelism = 4.
  RecordBatch big = SalesBatch(1000);
  ASSERT_TRUE(skadi_->RegisterTable("big", big).ok());
  EXPECT_EQ(skadi_->TablePartitions("big").size(), 4u);

  auto result = skadi_->Sql("SELECT region, SUM(amount) AS s FROM big GROUP BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(skadi_->runtime().metrics().GetCounter("core.adaptive_dop_decisions").value(),
            0);

  // Verify correctness against the reference.
  auto reference = GroupAggregateBatch(big, {"region"}, {{AggKind::kSum, "amount", "s"}});
  EXPECT_EQ(result->num_rows(), reference->num_rows());
}

TEST_F(SkadiTest, ParallelismClampedToPartitionCount) {
  // A 1-partition table queried under default parallelism 2 must NOT
  // double-count (the plan is clamped to the partition count).
  Start();
  RecordBatch sales = SalesBatch(100);
  ASSERT_TRUE(skadi_->RegisterTable("one", sales, 1).ok());
  auto result = skadi_->Sql("SELECT COUNT(*) AS n FROM one");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ColumnByName("n")->Int64At(0), 100);
}

TEST_F(SkadiTest, AvailableBackendsReflectCluster) {
  SkadiOptions options = DefaultOptions();
  options.cluster.device_complexes = 1;
  options.cluster.gpus_per_complex = 1;
  options.cluster.fpgas_per_complex = 1;
  Start(options);
  auto backends = skadi_->AvailableBackends();
  std::set<DeviceKind> kinds(backends.begin(), backends.end());
  EXPECT_TRUE(kinds.count(DeviceKind::kCpu));
  EXPECT_TRUE(kinds.count(DeviceKind::kGpu));
  EXPECT_TRUE(kinds.count(DeviceKind::kFpga));
  EXPECT_FALSE(kinds.count(DeviceKind::kDpu));  // control-plane only
}

}  // namespace
}  // namespace skadi
