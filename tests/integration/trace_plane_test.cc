// ISSUE 8 acceptance: with tracing on, a cross-node Submit -> schedule ->
// run -> Get flow reconstructs as ONE connected span tree — parent links
// survive the scheduler hop, the fabric hop to the executing raylet, and
// the reactor continuations that resolve the future.
//
// The test also writes the observability artifacts other tooling consumes:
//   trace_plane.trace.json   — Chrome-trace JSON (tools/trace.py validates
//                              it in tools/check.sh; CI uploads it)
//   trace_plane.metrics.json — MetricsRegistry dump
// and on ANY assertion failure dumps both (suffixed .fail) for triage.
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metric_names.h"
#include "src/common/trace.h"

#include "tests/runtime/runtime_test_util.h"

namespace skadi {
namespace {

class TracePlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Reset();
    trace::SetSampleEvery(1);
    trace::SetEnabled(true);
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 3;
    config.workers_per_server = 2;
    cluster_ = Cluster::Create(config);
    RegisterTestFunctions(registry_);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_, RuntimeOptions{});
  }

  void TearDown() override {
    trace::SetEnabled(false);
    if (HasFailure() && runtime_ != nullptr) {
      // Failure triage dump: the full trace and metrics surface at the
      // moment the assertion tripped.
      (void)trace::WriteChromeTraceFile("trace_plane.fail.trace.json");
      std::ofstream mf("trace_plane.fail.metrics.json");
      if (mf) {
        mf << runtime_->metrics().ToJson();
      }
    }
    runtime_.reset();
    cluster_.reset();
    trace::Reset();
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

bool Named(const trace::TraceEvent& e, const char* name) {
  return e.name != nullptr && std::strcmp(e.name, name) == 0;
}

TEST_F(TracePlaneTest, CrossNodeSubmitRunGetIsOneConnectedSpanTree) {
  // One driver-side root brackets the whole flow, exactly as an application
  // would trace a job: Submit and Get both parent under it, so the chain
  // has a single root to hang from.
  uint64_t driver_trace = 0;
  {
    trace::TraceSpan driver("test.driver.job");
    ASSERT_TRUE(driver.active());
    driver_trace = driver.context().trace_id;

    // A dependency chain forces scheduling, argument resolution through the
    // ownership/caching layers, and fabric transfers between nodes.
    ObjectRef current;
    for (int i = 0; i < 4; ++i) {
      TaskSpec spec = Call("inc_i64", {i == 0 ? TaskArg::Value(I64Buffer(100))
                                              : TaskArg::Ref(current)});
      auto refs = runtime_->Submit(std::move(spec));
      ASSERT_TRUE(refs.ok()) << refs.status().ToString();
      current = (*refs)[0];
    }
    auto result = runtime_->Get(current, 30000);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(I64Of(*result), 104);
  }

  std::vector<trace::TraceEvent> all = trace::Snapshot();

  // Restrict to the driver's trace and index its spans.
  std::map<uint64_t, trace::TraceEvent> spans;  // span_id -> event
  std::vector<trace::TraceEvent> in_trace;
  for (const trace::TraceEvent& e : all) {
    if (e.trace_id != driver_trace) {
      continue;
    }
    in_trace.push_back(e);
    if (e.phase == 0) {
      spans[e.span_id] = e;
    }
  }
  ASSERT_FALSE(in_trace.empty());

  // Every stage of the flow shows up in this one trace.
  for (const char* required :
       {names::kSpanRuntimeSubmit, names::kSpanSchedulerDispatch,
        names::kSpanRayletRunTask, names::kSpanRayletCompute,
        names::kSpanRuntimeGet}) {
    bool found = false;
    for (const trace::TraceEvent& e : in_trace) {
      if (Named(e, required)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "span '" << required << "' missing from the trace";
  }

  // Connectivity: exactly one root, and every other event's parent is a
  // recorded span of the same trace — the links survived every hop.
  int roots = 0;
  for (const trace::TraceEvent& e : in_trace) {
    if (e.parent_id == 0) {
      ++roots;
      EXPECT_TRUE(Named(e, "test.driver.job"));
    } else {
      EXPECT_TRUE(spans.count(e.parent_id) > 0)
          << "event '" << e.name << "' has dangling parent " << e.parent_id;
    }
  }
  EXPECT_EQ(roots, 1);

  // The tree genuinely crossed threads (driver, scheduler path, raylet
  // workers, reactor drivers).
  std::set<uint32_t> tids;
  for (const trace::TraceEvent& e : in_trace) {
    tids.insert(e.tid);
  }
  EXPECT_GE(tids.size(), 2u);

  // Export the artifacts for tools/trace.py (check.sh) and CI upload.
  Status st = trace::WriteChromeTraceFile("trace_plane.trace.json");
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::ofstream mf("trace_plane.metrics.json");
  ASSERT_TRUE(mf.good());
  mf << runtime_->metrics().ToJson();
}

TEST_F(TracePlaneTest, RuntimeStatsSurfaceCoversHotSubsystems) {
  // Drive a little traffic, then check the registry actually surfaces the
  // per-subsystem series the tentpole wired up.
  ObjectRef current;
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec = Call("inc_i64", {i == 0 ? TaskArg::Value(I64Buffer(0))
                                            : TaskArg::Ref(current)});
    auto refs = runtime_->Submit(std::move(spec));
    ASSERT_TRUE(refs.ok());
    current = (*refs)[0];
  }
  ASSERT_TRUE(runtime_->Get(current, 30000).ok());

  MetricsRegistry& m = runtime_->metrics();
  EXPECT_EQ(m.GetCounter(names::kRuntimeTasksSubmitted).value(), 3);
  EXPECT_GE(m.GetCounter(names::kSchedulerDispatched).value(), 3);
  EXPECT_GE(m.GetHistogram(names::kRayletTaskNanos).count(), 3);
  EXPECT_GE(m.GetHistogram(names::kRuntimeGetNanos).count(), 1);
  // The chain parks dependents until their input is ready: watcher telemetry
  // must have seen registrations, and the gauge must drain back.
  EXPECT_GE(m.GetCounter(names::kOwnershipWatchRegistrations).value(), 0);
  std::string json = m.ToJson();
  for (const char* key : {"counters", "gauges", "histograms"}) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\""), std::string::npos);
  }
}

}  // namespace
}  // namespace skadi
