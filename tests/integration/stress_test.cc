// Concurrency stress: many driver threads using the distributed task API at
// once; the caching layer under concurrent put/get/delete; failure injection
// racing live traffic. These tests assert invariants (no lost updates, no
// crashes, failures surface as clean statuses), not timing.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mutex.h"

#include "tests/runtime/runtime_test_util.h"

namespace skadi {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void Build(RuntimeOptions options = {}) {
    ClusterConfig config;
    config.racks = 2;
    config.servers_per_rack = 3;
    config.workers_per_server = 2;
    cluster_ = Cluster::Create(config);
    RegisterTestFunctions(registry_);
    runtime_ = std::make_unique<SkadiRuntime>(cluster_.get(), &registry_, options);
  }

  std::unique_ptr<Cluster> cluster_;
  FunctionRegistry registry_;
  std::unique_ptr<SkadiRuntime> runtime_;
};

TEST_F(StressTest, ConcurrentDriversSubmitChains) {
  Build();
  constexpr int kDrivers = 8;
  constexpr int kChain = 10;
  std::atomic<int> failures{0};

  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([this, d, &failures] {
      ObjectRef current;
      for (int i = 0; i < kChain; ++i) {
        TaskSpec spec = Call("inc_i64", {i == 0 ? TaskArg::Value(I64Buffer(d * 1000))
                                                : TaskArg::Ref(current)});
        auto refs = runtime_->Submit(std::move(spec));
        if (!refs.ok()) {
          failures.fetch_add(1);
          return;
        }
        current = (*refs)[0];
      }
      auto result = runtime_->Get(current, 30000);
      if (!result.ok() || I64Of(*result) != d * 1000 + kChain) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : drivers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Get() unblocks at MarkReady, slightly before the completion counter is
  // bumped; give the last worker a beat to finish its bookkeeping.
  Counter& completed = runtime_->metrics().GetCounter("runtime.tasks_completed");
  for (int i = 0; i < 1000 && completed.value() < kDrivers * kChain; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(completed.value(), kDrivers * kChain);
}

TEST_F(StressTest, ConcurrentFanOutSharedInput) {
  Build();
  auto shared = runtime_->Put(I64Buffer(7));
  ASSERT_TRUE(shared.ok());

  constexpr int kTasks = 64;
  std::vector<ObjectRef> refs;
  for (int i = 0; i < kTasks; ++i) {
    auto r = runtime_->Submit(Call("inc_i64", {TaskArg::Ref(*shared)}));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  ASSERT_TRUE(runtime_->Wait(refs, 30000).ok());
  for (const ObjectRef& ref : refs) {
    auto v = runtime_->Get(ref);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(I64Of(*v), 8);
  }
}

TEST_F(StressTest, CachingLayerConcurrentPutGetDelete) {
  Build();
  CachingLayer& cache = cluster_->cache();
  std::vector<NodeId> nodes = cluster_->ComputeNodes();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> errors{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      std::vector<ObjectId> mine;
      for (int op = 0; op < kOpsPerThread; ++op) {
        double dice = rng.NextDouble();
        if (dice < 0.5 || mine.empty()) {
          ObjectId id = ObjectId::Next();
          NodeId home = nodes[rng.NextBounded(nodes.size())];
          if (cache.Put(id, Buffer::Zeros(1024 + rng.NextBounded(4096)), home).ok()) {
            mine.push_back(id);
          } else {
            errors.fetch_add(1);
          }
        } else if (dice < 0.85) {
          ObjectId id = mine[rng.NextBounded(mine.size())];
          NodeId reader = nodes[rng.NextBounded(nodes.size())];
          if (!cache.Get(id, reader).ok()) {
            errors.fetch_add(1);
          }
        } else {
          ObjectId id = mine.back();
          mine.pop_back();
          if (!cache.Delete(id).ok()) {
            errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : workers) {
    t.join();
  }
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(StressTest, KillNodeDuringSteadyTraffic) {
  RuntimeOptions options;
  options.recovery = RecoveryMode::kLineage;
  options.policy = SchedulingPolicy::kRoundRobin;
  Build(options);

  NodeId victim;
  for (NodeId n : cluster_->ComputeNodes()) {
    if (n != cluster_->head()) {
      victim = n;
      break;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> submitted{0};
  std::atomic<int> resolved{0};
  // Diagnostics for the historical ~4–5% flake (a task aborting on the
  // killed node ahead of the scheduler's failover sweep was dropped and its
  // future hung until the Get deadline — fixed by Scheduler::OnTaskAborted).
  // Every non-terminal Get outcome is recorded with its status so a
  // regression names the stuck future instead of timing out silently.
  Mutex failures_mu;
  std::vector<std::string> failures;
  std::thread driver([&] {
    std::vector<ObjectRef> refs;
    while (!stop.load()) {
      auto r = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(1))}));
      if (r.ok()) {
        refs.push_back((*r)[0]);
        submitted.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (const ObjectRef& ref : refs) {
      // Every future must resolve: a value, or a clean terminal error. The
      // explicit 20 s deadline bounds the test; a healthy run resolves each
      // future in milliseconds.
      auto result = runtime_->Get(ref, 20000);
      if (result.ok() || result.status().code() == StatusCode::kDataLoss) {
        resolved.fetch_add(1);
      } else {
        MutexLock lock(failures_mu);
        failures.push_back("Get(" + ref.id.ToString() +
                           ") did not resolve: " + result.status().ToString());
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(runtime_->KillNode(victim).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  driver.join();

  EXPECT_GT(submitted.load(), 0);
  EXPECT_EQ(resolved.load(), submitted.load())
      << "scheduler pending=" << runtime_->scheduler().pending_tasks()
      << " aborts_redispatched="
      << runtime_->metrics().GetCounter("scheduler.abort_redispatches").value()
      << " failovers="
      << runtime_->metrics().GetCounter("scheduler.failover_redispatches").value();
  {
    MutexLock lock(failures_mu);
    for (const std::string& f : failures) {
      ADD_FAILURE() << f;
    }
  }
}

TEST_F(StressTest, ManyActorsConcurrentCounters) {
  Build();
  ASSERT_TRUE(registry_.Register("ctr_add", [](TaskContext& ctx, std::vector<Buffer>& args)
                                    -> Result<std::vector<Buffer>> {
    auto* value = static_cast<int64_t*>(ctx.actor_state->get());
    *value += I64Of(args[0]);
    return std::vector<Buffer>{I64Buffer(*value)};
  }).ok());

  constexpr int kActors = 6;
  constexpr int kCallsPerActor = 25;
  std::vector<ActorId> actors;
  std::vector<NodeId> nodes = cluster_->ComputeNodes();
  for (int a = 0; a < kActors; ++a) {
    auto actor = runtime_->CreateActor(nodes[static_cast<size_t>(a) % nodes.size()],
                                       std::make_shared<int64_t>(0));
    ASSERT_TRUE(actor.ok());
    actors.push_back(*actor);
  }

  // Failures are collected as strings: gtest assertions are not reliable off
  // the main thread, and sanitizer runs need the long Wait timeout.
  std::vector<std::thread> callers;
  Mutex errors_mu;
  std::vector<std::string> errors;
  auto record = [&](std::string message) {
    MutexLock lock(errors_mu);
    errors.push_back(std::move(message));
  };
  for (int a = 0; a < kActors; ++a) {
    callers.emplace_back([&, a] {
      std::vector<ObjectRef> refs;
      for (int i = 0; i < kCallsPerActor; ++i) {
        auto r = runtime_->SubmitActorTask(actors[static_cast<size_t>(a)],
                                           Call("ctr_add", {TaskArg::Value(I64Buffer(1))}));
        if (!r.ok()) {
          record("submit: " + r.status().ToString());
          return;
        }
        refs.push_back((*r)[0]);
      }
      Status waited = runtime_->Wait(refs, 120000);
      if (!waited.ok()) {
        record("wait: " + waited.ToString());
        return;
      }
      // Actor tasks are serialized (one at a time against the state cell) but
      // NOT ordered: the runtime may run the last-submitted call before an
      // earlier one. The atomicity invariant is that the 25 increments produce
      // the outputs {1..25} as a set — any lost update collapses two outputs
      // onto one value.
      std::vector<int64_t> outputs;
      for (const ObjectRef& ref : refs) {
        auto got = runtime_->Get(ref);
        if (!got.ok()) {
          record("get: " + got.status().ToString());
          return;
        }
        outputs.push_back(I64Of(*got));
      }
      std::sort(outputs.begin(), outputs.end());
      for (int i = 0; i < kCallsPerActor; ++i) {
        if (outputs[static_cast<size_t>(i)] != i + 1) {
          record("counter outputs are not {1.." +
                 std::to_string(kCallsPerActor) + "}: saw " +
                 std::to_string(outputs[static_cast<size_t>(i)]) +
                 " at sorted position " + std::to_string(i) +
                 " — an increment was lost or duplicated");
          return;
        }
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  for (const std::string& e : errors) {
    ADD_FAILURE() << e;
  }
}

TEST_F(StressTest, MetricsConsistentAfterLoad) {
  Build();
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 100; ++i) {
    auto r = runtime_->Submit(Call("inc_i64", {TaskArg::Value(I64Buffer(i))}));
    ASSERT_TRUE(r.ok());
    refs.push_back((*r)[0]);
  }
  ASSERT_TRUE(runtime_->Wait(refs, 30000).ok());
  MetricsRegistry& metrics = runtime_->metrics();
  EXPECT_EQ(metrics.GetCounter("runtime.tasks_submitted").value(), 100);
  EXPECT_EQ(metrics.GetCounter("runtime.tasks_completed").value(), 100);
  EXPECT_EQ(metrics.GetCounter("runtime.tasks_failed").value(), 0);
}

}  // namespace
}  // namespace skadi
