// Table 1, executable: the paper's comparison table claims Skadi is the only
// system with all five properties —
//   D-API (declarative), IR (hardware-agnostic computation), stateful
//   serverless, physical disaggregation, integrated data-system pipelines.
// Each test asserts one column against this implementation.
#include <gtest/gtest.h>

#include "src/core/skadi.h"
#include "src/format/serde.h"
#include "src/ir/dialects.h"
#include "src/ir/passes.h"

namespace skadi {
namespace {

class Table1Test : public ::testing::Test {
 protected:
  void Start(SkadiOptions options) {
    auto skadi = Skadi::Start(options);
    ASSERT_TRUE(skadi.ok());
    skadi_ = std::move(skadi).value();
  }

  static SkadiOptions DisaggregatedCluster() {
    SkadiOptions options;
    options.cluster.racks = 2;
    options.cluster.servers_per_rack = 2;
    options.cluster.device_complexes = 1;
    options.cluster.gpus_per_complex = 1;
    options.cluster.fpgas_per_complex = 2;
    options.cluster.memory_blades = 1;
    return options;
  }

  RecordBatch TinyTable() {
    Schema schema({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
    auto batch = RecordBatch::Make(
        schema, {Column::MakeInt64({1, 2, 3, 4}),
                 Column::MakeFloat64({1.0, 2.0, 3.0, 4.0})});
    return std::move(batch).value();
  }

  std::unique_ptr<Skadi> skadi_;
};

// Column 1: D-API — users submit declarations, not imperative DAGs.
TEST_F(Table1Test, DeclarativeApi) {
  Start(DisaggregatedCluster());
  ASSERT_TRUE(skadi_->RegisterTable("t", TinyTable()).ok());
  auto result = skadi_->Sql("SELECT SUM(v) AS s FROM t WHERE k > 1");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->ColumnByName("s")->Float64At(0), 9.0);
}

// Column 2: IR — the same hardware-agnostic function lowers onto multiple
// backends, and the lowering picks per-op backends by cost.
TEST_F(Table1Test, HardwareAgnosticIr) {
  IrFunction fn("d");
  ValueId t = fn.AddParam(IrType::Table());
  ValueId x = fn.AddParam(IrType::Tensor());
  fn.SetReturns({EmitFilter(fn, t, Expr::Bool(true)), EmitMatmul(fn, x, x)});
  ASSERT_TRUE(RunSelectBackends(
                  fn, {DeviceKind::kCpu, DeviceKind::kGpu, DeviceKind::kFpga},
                  64 << 20)
                  .ok());
  // One function, two ops, two different device kinds chosen.
  EXPECT_EQ(fn.ops()[0].backend, DeviceKind::kFpga);
  EXPECT_EQ(fn.ops()[1].backend, DeviceKind::kGpu);
}

// Column 3: stateful serverless — functions keep state across invocations
// (actor), and ephemeral data flows by reference without durable storage.
TEST_F(Table1Test, StatefulServerless) {
  Start(DisaggregatedCluster());
  SkadiRuntime& runtime = skadi_->runtime();
  skadi_->registry().Register("accumulate", [](TaskContext& ctx, std::vector<Buffer>& args)
                                                -> Result<std::vector<Buffer>> {
    auto* total = static_cast<double*>(ctx.actor_state->get());
    BufferReader r(args[0]);
    *total += r.ReadF64();
    BufferBuilder b;
    b.AppendF64(*total);
    return std::vector<Buffer>{b.Finish()};
  });
  auto actor = runtime.CreateActor(skadi_->cluster().ComputeNodes()[1],
                                   std::make_shared<double>(0.0));
  ASSERT_TRUE(actor.ok());
  ObjectRef last;
  for (int i = 1; i <= 4; ++i) {
    BufferBuilder b;
    b.AppendF64(static_cast<double>(i));
    TaskSpec spec;
    spec.function = "accumulate";
    spec.args = {TaskArg::Value(b.Finish())};
    spec.num_returns = 1;
    auto refs = runtime.SubmitActorTask(*actor, std::move(spec));
    ASSERT_TRUE(refs.ok());
    last = (*refs)[0];
  }
  auto result = runtime.Get(last);
  ASSERT_TRUE(result.ok());
  BufferReader r(*result);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 10.0);
  // Nothing crossed the durable link.
  EXPECT_EQ(skadi_->cluster().fabric().bytes(LinkClass::kDurable), 0);
}

// Column 4: physical disaggregation — tasks run on accelerator nodes behind
// a DPU; the ownership table records device id + handle for their outputs;
// the caching layer spans device memory and blades.
TEST_F(Table1Test, PhysicalDisaggregation) {
  Start(DisaggregatedCluster());
  SkadiRuntime& runtime = skadi_->runtime();
  skadi_->registry().Register("on_device", [](TaskContext& ctx, std::vector<Buffer>&)
                                               -> Result<std::vector<Buffer>> {
    return std::vector<Buffer>{Buffer::FromString(
        std::string(DeviceKindName(ctx.device.kind)))};
  });
  NodeId fpga = skadi_->cluster().NodesWithDevice(DeviceKind::kFpga)[0];
  TaskSpec spec;
  spec.function = "on_device";
  spec.num_returns = 1;
  spec.pinned_node = fpga;
  auto refs = runtime.Submit(std::move(spec));
  ASSERT_TRUE(refs.ok());
  auto result = runtime.Get((*refs)[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsStringView(), "fpga");

  // Heterogeneity-aware ownership row: device id + handle recorded.
  auto record = runtime.ownership((*refs)[0].owner).Resolve((*refs)[0].id);
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE(record->device.valid());
  EXPECT_NE(record->device_handle, 0u);
  // The FPGA is fronted by a DPU (Gen-1 routing would detour through it).
  EXPECT_TRUE(skadi_->cluster().node(fpga)->dpu.valid());
}

// Column 5: integration — one job runs SQL ETL and ML training on the same
// runtime, exchanging data through the caching layer only.
TEST_F(Table1Test, IntegratedPipelines) {
  Start(DisaggregatedCluster());
  Rng rng(3);
  ColumnBuilder xs(DataType::kFloat64);
  ColumnBuilder noise(DataType::kFloat64);
  ColumnBuilder ys(DataType::kFloat64);
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextDouble();
    xs.AppendFloat64(x);
    noise.AppendFloat64(rng.NextDouble() * 1000.0);  // junk column to drop
    ys.AppendFloat64(3 * x + 2);
  }
  Schema schema({{"x", DataType::kFloat64},
                 {"junk", DataType::kFloat64},
                 {"y", DataType::kFloat64}});
  auto raw = RecordBatch::Make(schema, {xs.Finish(), noise.Finish(), ys.Finish()});
  ASSERT_TRUE(skadi_->RegisterTable("raw", *raw).ok());

  // SQL stage feeds the ML stage through a registered intermediate table.
  auto cleaned = skadi_->Sql("SELECT x, y FROM raw WHERE x >= 0.0");
  ASSERT_TRUE(cleaned.ok());
  ASSERT_TRUE(skadi_->RegisterTable("cleaned", *cleaned).ok());

  MlTrainOptions train;
  train.epochs = 150;
  train.learning_rate = 0.5;
  auto model = skadi_->TrainModel("cleaned", {"x"}, "y", train);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights.At(0, 0), 3.0, 0.1);
  EXPECT_NEAR(model->weights.At(1, 0), 2.0, 0.1);
  EXPECT_EQ(skadi_->cluster().fabric().bytes(LinkClass::kDurable), 0);
}

}  // namespace
}  // namespace skadi
