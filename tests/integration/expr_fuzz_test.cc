// Property test: random expression trees evaluated column-at-a-time
// (EvalExpr) match a straightforward row-at-a-time reference interpreter,
// including null propagation and int->float promotion.
#include <optional>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/format/expr.h"

namespace skadi {
namespace {

// A dynamically typed scalar for the reference interpreter.
struct RefValue {
  enum class Kind { kNull, kInt, kFloat, kBool } kind = Kind::kNull;
  int64_t i = 0;
  double f = 0;
  bool b = false;

  static RefValue Null() { return {}; }
  static RefValue Int(int64_t v) { return {Kind::kInt, v, 0, false}; }
  static RefValue Float(double v) { return {Kind::kFloat, 0, v, false}; }
  static RefValue Bool(bool v) { return {Kind::kBool, 0, 0, v}; }

  double AsFloat() const { return kind == Kind::kInt ? static_cast<double>(i) : f; }
  bool numeric() const { return kind == Kind::kInt || kind == Kind::kFloat; }
};

RefValue RefEval(const Expr& e, const RecordBatch& batch, int64_t row) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      const Column* col = batch.ColumnByName(e.column_name());
      if (col->IsNull(row)) {
        return RefValue::Null();
      }
      switch (col->type()) {
        case DataType::kInt64:
          return RefValue::Int(col->Int64At(row));
        case DataType::kFloat64:
          return RefValue::Float(col->Float64At(row));
        case DataType::kBool:
          return RefValue::Bool(col->BoolAt(row));
        default:
          return RefValue::Null();
      }
    }
    case ExprKind::kLiteral:
      switch (e.literal_type()) {
        case DataType::kInt64:
          return RefValue::Int(e.int_value());
        case DataType::kFloat64:
          return RefValue::Float(e.double_value());
        case DataType::kBool:
          return RefValue::Bool(e.bool_value());
        default:
          return RefValue::Null();
      }
    case ExprKind::kNot: {
      RefValue v = RefEval(*e.left(), batch, row);
      return v.kind == RefValue::Kind::kNull ? RefValue::Null() : RefValue::Bool(!v.b);
    }
    case ExprKind::kBinary:
      break;
  }
  RefValue l = RefEval(*e.left(), batch, row);
  RefValue r = RefEval(*e.right(), batch, row);
  if (l.kind == RefValue::Kind::kNull || r.kind == RefValue::Kind::kNull) {
    return RefValue::Null();
  }
  switch (e.op()) {
    case BinaryOp::kAnd:
      return RefValue::Bool(l.b && r.b);
    case BinaryOp::kOr:
      return RefValue::Bool(l.b || r.b);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      bool as_float = l.kind == RefValue::Kind::kFloat || r.kind == RefValue::Kind::kFloat;
      if (as_float) {
        double a = l.AsFloat();
        double b = r.AsFloat();
        double out = e.op() == BinaryOp::kAdd ? a + b
                     : e.op() == BinaryOp::kSub ? a - b
                                                : a * b;
        return RefValue::Float(out);
      }
      int64_t out = e.op() == BinaryOp::kAdd ? l.i + r.i
                    : e.op() == BinaryOp::kSub ? l.i - r.i
                                               : l.i * r.i;
      return RefValue::Int(out);
    }
    case BinaryOp::kDiv: {
      bool as_float = l.kind == RefValue::Kind::kFloat || r.kind == RefValue::Kind::kFloat;
      if (as_float) {
        if (r.AsFloat() == 0.0) {
          return RefValue::Null();
        }
        return RefValue::Float(l.AsFloat() / r.AsFloat());
      }
      if (r.i == 0) {
        return RefValue::Null();
      }
      return RefValue::Int(l.i / r.i);
    }
    default: {  // comparisons
      double a = l.AsFloat();
      double b = r.AsFloat();
      bool out = false;
      switch (e.op()) {
        case BinaryOp::kLt:
          out = a < b;
          break;
        case BinaryOp::kLe:
          out = a <= b;
          break;
        case BinaryOp::kGt:
          out = a > b;
          break;
        case BinaryOp::kGe:
          out = a >= b;
          break;
        case BinaryOp::kEq:
          out = a == b;
          break;
        case BinaryOp::kNe:
          out = a != b;
          break;
        default:
          break;
      }
      return RefValue::Bool(out);
    }
  }
}

// Generates a random expression of the given result class.
// depth limits recursion; kind: 0 = numeric, 1 = boolean.
ExprPtr RandomExpr(Rng& rng, int depth, int kind) {
  if (kind == 1) {
    // boolean
    if (depth <= 0 || rng.NextBool(0.2)) {
      return Expr::Col("b");
    }
    switch (rng.NextBounded(4)) {
      case 0:
        return Expr::Binary(BinaryOp::kAnd, RandomExpr(rng, depth - 1, 1),
                            RandomExpr(rng, depth - 1, 1));
      case 1:
        return Expr::Binary(BinaryOp::kOr, RandomExpr(rng, depth - 1, 1),
                            RandomExpr(rng, depth - 1, 1));
      case 2:
        return Expr::Not(RandomExpr(rng, depth - 1, 1));
      default: {
        BinaryOp cmp = static_cast<BinaryOp>(
            static_cast<int>(BinaryOp::kLt) + static_cast<int>(rng.NextBounded(6)));
        return Expr::Binary(cmp, RandomExpr(rng, depth - 1, 0),
                            RandomExpr(rng, depth - 1, 0));
      }
    }
  }
  // numeric
  if (depth <= 0 || rng.NextBool(0.3)) {
    switch (rng.NextBounded(4)) {
      case 0:
        return Expr::Col("i");
      case 1:
        return Expr::Col("f");
      case 2:
        return Expr::Int(rng.NextI64InRange(-5, 5));
      default:
        return Expr::Float(static_cast<double>(rng.NextI64InRange(-5, 5)) / 2.0);
    }
  }
  BinaryOp op;
  switch (rng.NextBounded(4)) {
    case 0:
      op = BinaryOp::kAdd;
      break;
    case 1:
      op = BinaryOp::kSub;
      break;
    case 2:
      op = BinaryOp::kMul;
      break;
    default:
      op = BinaryOp::kDiv;
      break;
  }
  return Expr::Binary(op, RandomExpr(rng, depth - 1, 0), RandomExpr(rng, depth - 1, 0));
}

class ExprFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzzTest, ColumnarMatchesRowWise) {
  Rng rng(GetParam());

  // Random batch with nulls.
  constexpr int64_t kRows = 200;
  ColumnBuilder ints(DataType::kInt64);
  ColumnBuilder floats(DataType::kFloat64);
  ColumnBuilder bools(DataType::kBool);
  for (int64_t r = 0; r < kRows; ++r) {
    if (rng.NextBool(0.1)) {
      ints.AppendNull();
    } else {
      ints.AppendInt64(rng.NextI64InRange(-10, 10));
    }
    if (rng.NextBool(0.1)) {
      floats.AppendNull();
    } else {
      floats.AppendFloat64(static_cast<double>(rng.NextI64InRange(-20, 20)) / 4.0);
    }
    if (rng.NextBool(0.1)) {
      bools.AppendNull();
    } else {
      bools.AppendBool(rng.NextBool());
    }
  }
  Schema schema({{"i", DataType::kInt64},
                 {"f", DataType::kFloat64},
                 {"b", DataType::kBool}});
  auto batch = RecordBatch::Make(schema, {ints.Finish(), floats.Finish(), bools.Finish()});
  ASSERT_TRUE(batch.ok());

  for (int trial = 0; trial < 10; ++trial) {
    ExprPtr expr = RandomExpr(rng, 3, static_cast<int>(rng.NextBounded(2)));
    SCOPED_TRACE("expr: " + expr->ToString());
    auto columnar = EvalExpr(*expr, *batch);
    ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();
    ASSERT_EQ(columnar->length(), kRows);

    for (int64_t r = 0; r < kRows; ++r) {
      RefValue want = RefEval(*expr, *batch, r);
      if (want.kind == RefValue::Kind::kNull) {
        EXPECT_TRUE(columnar->IsNull(r)) << "row " << r;
        continue;
      }
      ASSERT_FALSE(columnar->IsNull(r)) << "row " << r;
      switch (want.kind) {
        case RefValue::Kind::kInt:
          ASSERT_EQ(columnar->type(), DataType::kInt64) << "row " << r;
          EXPECT_EQ(columnar->Int64At(r), want.i) << "row " << r;
          break;
        case RefValue::Kind::kFloat:
          ASSERT_EQ(columnar->type(), DataType::kFloat64) << "row " << r;
          EXPECT_NEAR(columnar->Float64At(r), want.f, 1e-9) << "row " << r;
          break;
        case RefValue::Kind::kBool:
          ASSERT_EQ(columnar->type(), DataType::kBool) << "row " << r;
          EXPECT_EQ(columnar->BoolAt(r), want.b) << "row " << r;
          break;
        case RefValue::Kind::kNull:
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzzTest, ::testing::Range<uint64_t>(500, 515));

}  // namespace
}  // namespace skadi
