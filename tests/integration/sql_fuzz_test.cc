// Property test: randomly generated SQL queries produce identical results
// when executed (a) distributed through the full Skadi stack (plan ->
// optimize -> lower -> shuffle -> execute) and (b) by direct single-node
// kernel evaluation. Catches planner/shuffle/partial-aggregation bugs that
// fixed examples miss.
#include <gtest/gtest.h>

#include "src/core/skadi.h"

namespace skadi {
namespace {

struct FuzzCase {
  std::string query;
  // Reference pipeline pieces.
  ExprPtr where;
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggs;
};

// Builds a random aggregate query over schema (g int64, k int64, v float64).
FuzzCase MakeCase(Rng& rng) {
  FuzzCase out;
  std::string where_sql;

  // Random predicate: compare k or v against a constant, possibly AND of two.
  auto random_pred = [&rng](std::string& sql) -> ExprPtr {
    bool on_k = rng.NextBool();
    int64_t threshold = rng.NextI64InRange(10, 90);
    bool greater = rng.NextBool();
    std::string column = on_k ? "k" : "v";
    sql = column + (greater ? " > " : " < ") + std::to_string(threshold);
    return Expr::Binary(greater ? BinaryOp::kGt : BinaryOp::kLt, Expr::Col(column),
                        on_k ? Expr::Int(threshold)
                             : Expr::Float(static_cast<double>(threshold)));
  };

  if (rng.NextBool(0.8)) {
    std::string sql1;
    out.where = random_pred(sql1);
    where_sql = sql1;
    if (rng.NextBool(0.4)) {
      std::string sql2;
      ExprPtr second = random_pred(sql2);
      out.where = Expr::Binary(BinaryOp::kAnd, out.where, second);
      where_sql += " AND " + sql2;
    }
  }

  bool grouped = rng.NextBool(0.7);
  if (grouped) {
    out.group_by = {"g"};
  }

  // 1-3 random aggregates.
  std::vector<std::string> selected;
  if (grouped) {
    selected.push_back("g");
  }
  int num_aggs = static_cast<int>(rng.NextBounded(3)) + 1;
  for (int i = 0; i < num_aggs; ++i) {
    std::string name = "a" + std::to_string(i);
    switch (rng.NextBounded(5)) {
      case 0:
        selected.push_back("COUNT(*) AS " + name);
        out.aggs.push_back({AggKind::kCount, "*", name});
        break;
      case 1:
        selected.push_back("SUM(v) AS " + name);
        out.aggs.push_back({AggKind::kSum, "v", name});
        break;
      case 2:
        selected.push_back("MIN(v) AS " + name);
        out.aggs.push_back({AggKind::kMin, "v", name});
        break;
      case 3:
        selected.push_back("MAX(k) AS " + name);
        out.aggs.push_back({AggKind::kMax, "k", name});
        break;
      case 4:
        selected.push_back("AVG(v) AS " + name);
        out.aggs.push_back({AggKind::kMean, "v", name});
        break;
    }
  }

  out.query = "SELECT ";
  for (size_t i = 0; i < selected.size(); ++i) {
    if (i > 0) {
      out.query += ", ";
    }
    out.query += selected[i];
  }
  out.query += " FROM t";
  if (!where_sql.empty()) {
    out.query += " WHERE " + where_sql;
  }
  if (grouped) {
    out.query += " GROUP BY g ORDER BY g";
  }
  return out;
}

class SqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzzTest, DistributedMatchesReference) {
  Rng rng(GetParam());

  // Random table.
  ColumnBuilder gs(DataType::kInt64);
  ColumnBuilder ks(DataType::kInt64);
  ColumnBuilder vs(DataType::kFloat64);
  const int64_t rows = 500 + static_cast<int64_t>(rng.NextBounded(1500));
  for (int64_t i = 0; i < rows; ++i) {
    gs.AppendInt64(static_cast<int64_t>(rng.NextBounded(6)));
    ks.AppendInt64(rng.NextI64InRange(0, 100));
    vs.AppendFloat64(static_cast<double>(rng.NextI64InRange(0, 100)));
  }
  Schema schema({{"g", DataType::kInt64},
                 {"k", DataType::kInt64},
                 {"v", DataType::kFloat64}});
  auto table = RecordBatch::Make(schema, {gs.Finish(), ks.Finish(), vs.Finish()});
  ASSERT_TRUE(table.ok());

  SkadiOptions options;
  options.cluster.racks = 2;
  options.cluster.servers_per_rack = 2;
  options.default_parallelism = 1 + static_cast<int>(rng.NextBounded(4));
  auto skadi = Skadi::Start(options);
  ASSERT_TRUE(skadi.ok());
  ASSERT_TRUE((*skadi)->RegisterTable("t", *table).ok());

  FuzzCase fuzz = MakeCase(rng);
  SCOPED_TRACE("query: " + fuzz.query + " (dop " +
               std::to_string(options.default_parallelism) + ")");

  auto distributed = (*skadi)->Sql(fuzz.query);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  // Reference: local filter + aggregate + sort.
  RecordBatch reference = *table;
  if (fuzz.where != nullptr) {
    auto filtered = FilterBatch(reference, *fuzz.where);
    ASSERT_TRUE(filtered.ok());
    reference = std::move(filtered).value();
  }
  auto aggregated = GroupAggregateBatch(reference, fuzz.group_by, fuzz.aggs);
  ASSERT_TRUE(aggregated.ok());
  RecordBatch expected = std::move(aggregated).value();
  if (!fuzz.group_by.empty()) {
    auto sorted = SortBatch(expected, {{"g", true}});
    ASSERT_TRUE(sorted.ok());
    expected = std::move(sorted).value();
  }

  ASSERT_EQ(distributed->num_rows(), expected.num_rows());
  ASSERT_EQ(distributed->num_columns(), expected.num_columns());
  for (int64_t r = 0; r < expected.num_rows(); ++r) {
    for (size_t c = 0; c < expected.num_columns(); ++c) {
      const std::string& name = expected.schema().field(c).name;
      const Column* got = distributed->ColumnByName(name);
      ASSERT_NE(got, nullptr) << "missing column " << name;
      const Column& want = expected.column(c);
      ASSERT_EQ(got->IsNull(r), want.IsNull(r)) << name << " row " << r;
      if (want.IsNull(r)) {
        continue;
      }
      switch (want.type()) {
        case DataType::kInt64:
          EXPECT_EQ(got->Int64At(r), want.Int64At(r)) << name << " row " << r;
          break;
        case DataType::kFloat64:
          EXPECT_NEAR(got->Float64At(r), want.Float64At(r), 1e-6)
              << name << " row " << r;
          break;
        default:
          EXPECT_EQ(got->ValueToString(r), want.ValueToString(r));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Range<uint64_t>(1000, 1020));

}  // namespace
}  // namespace skadi
