// Lifetime and zero-copy guarantees of the aliasing data plane: deserialized
// batches/tensors view the wire buffer, survive the death of every other
// handle (including the object-store entry that held the bytes), and the
// whole local Put -> Get -> deserialize round trip performs no payload copy.
#include <gtest/gtest.h>

#include "src/common/buffer.h"
#include "src/format/serde.h"
#include "src/objectstore/local_store.h"

namespace skadi {
namespace {

RecordBatch MakeBatch(int64_t rows) {
  ColumnBuilder ids(DataType::kInt64);
  ColumnBuilder names(DataType::kString);
  ColumnBuilder scores(DataType::kFloat64);
  ColumnBuilder flags(DataType::kBool);
  for (int64_t i = 0; i < rows; ++i) {
    ids.AppendInt64(i);
    if (i % 7 == 0) {
      names.AppendNull();
    } else {
      names.AppendString("row-" + std::to_string(i));
    }
    scores.AppendFloat64(static_cast<double>(i) * 0.5);
    flags.AppendBool(i % 3 == 0);
  }
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kFloat64},
                 {"flag", DataType::kBool}});
  auto batch = RecordBatch::Make(
      schema, {ids.Finish(), names.Finish(), scores.Finish(), flags.Finish()});
  return std::move(batch).value();
}

void ExpectBatchesEqual(const RecordBatch& a, const RecordBatch& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(a.column(c).IsNull(r), b.column(c).IsNull(r))
          << "col " << c << " row " << r;
      if (!a.column(c).IsNull(r)) {
        ASSERT_EQ(a.column(c).ValueToString(r), b.column(c).ValueToString(r))
            << "col " << c << " row " << r;
      }
    }
  }
}

TEST(SerdeAliasTest, DeserializedBatchViewsWireBuffer) {
  RecordBatch original = MakeBatch(100);
  Buffer wire = SerializeBatchIpc(original);
  auto decoded = DeserializeBatchIpc(wire);
  ASSERT_TRUE(decoded.ok());
  // Every column aliases the wire buffer rather than owning fresh storage.
  for (size_t c = 0; c < decoded->num_columns(); ++c) {
    EXPECT_TRUE(decoded->column(c).is_view()) << "column " << c;
  }
  const uint8_t* lo = wire.data();
  const uint8_t* hi = wire.data() + wire.size();
  const uint8_t* ids = reinterpret_cast<const uint8_t*>(decoded->column(0).ints().data());
  EXPECT_TRUE(ids >= lo && ids < hi) << "int column points outside the wire buffer";
  // 64-byte-aligned layout relative to the buffer start.
  EXPECT_EQ((ids - lo) % 64, 0);
}

TEST(SerdeAliasTest, DeserializeIsCopyFree) {
  RecordBatch original = MakeBatch(1000);
  Buffer wire = SerializeBatchIpc(original);
  Buffer::ResetCopyStats();
  auto decoded = DeserializeBatchIpc(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(Buffer::copy_count(), 0u);
  EXPECT_EQ(Buffer::copy_bytes(), 0u);
  ExpectBatchesEqual(original, *decoded);
}

TEST(SerdeAliasTest, BatchOutlivesWireBufferHandle) {
  RecordBatch original = MakeBatch(50);
  RecordBatch decoded;
  {
    Buffer wire = SerializeBatchIpc(original);
    auto result = DeserializeBatchIpc(wire);
    ASSERT_TRUE(result.ok());
    decoded = std::move(result).value();
  }  // the only Buffer handle is gone; the batch's owner refs keep the bytes
  ExpectBatchesEqual(original, decoded);
}

TEST(SerdeAliasTest, BatchSurvivesStoreDelete) {
  LocalObjectStore store(DeviceId::Next(), 1 << 20);
  RecordBatch original = MakeBatch(200);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(store.Put(id, SerializeBatchIpc(original)).ok());

  auto fetched = store.Get(id);
  ASSERT_TRUE(fetched.ok());
  auto decoded = DeserializeBatchIpc(*fetched);
  ASSERT_TRUE(decoded.ok());

  // Delete the entry, then drop the fetched handle: the decoded batch's
  // aliased columns must keep the sealed bytes alive on their own.
  ASSERT_TRUE(store.Delete(id).ok());
  fetched = Status::NotFound("released");
  ExpectBatchesEqual(original, *decoded);
}

TEST(SerdeAliasTest, BatchSurvivesStoreClear) {
  LocalObjectStore store(DeviceId::Next(), 1 << 20);
  RecordBatch original = MakeBatch(64);
  ObjectId id = ObjectId::Next();
  ASSERT_TRUE(store.Put(id, SerializeBatchIpc(original)).ok());
  auto fetched = store.Get(id);
  ASSERT_TRUE(fetched.ok());
  auto decoded = DeserializeBatchIpc(*fetched);
  ASSERT_TRUE(decoded.ok());
  store.Clear();  // node failure: drops every entry
  fetched = Status::NotFound("released");
  ExpectBatchesEqual(original, *decoded);
}

TEST(SerdeAliasTest, LocalRoundTripIsCopyFreeEndToEnd) {
  // The acceptance path: Put -> Get -> deserialize with zero payload copies.
  LocalObjectStore store(DeviceId::Next(), 1 << 22);
  RecordBatch original = MakeBatch(2000);
  ObjectId id = ObjectId::Next();
  Buffer wire = SerializeBatchIpc(original);
  Buffer::ResetCopyStats();
  ASSERT_TRUE(store.Put(id, wire).ok());
  auto fetched = store.Get(id);
  ASSERT_TRUE(fetched.ok());
  auto decoded = DeserializeBatchIpc(*fetched);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(Buffer::copy_count(), 0u) << "data plane performed a payload copy";
  EXPECT_EQ(fetched->data(), wire.data()) << "store returned different storage";
}

TEST(SerdeAliasTest, RoundTripMatchesRowCodecByteForByte) {
  // The two codecs must agree on content; serialize(decode(wire)) must also
  // reproduce wire exactly (views re-serialize identically to owned columns).
  RecordBatch original = MakeBatch(300);
  Buffer wire = SerializeBatchIpc(original);
  auto via_ipc = DeserializeBatchIpc(wire);
  ASSERT_TRUE(via_ipc.ok());
  auto via_row = DeserializeBatchRowCodec(SerializeBatchRowCodec(original));
  ASSERT_TRUE(via_row.ok());
  ExpectBatchesEqual(*via_ipc, *via_row);
  Buffer rewire = SerializeBatchIpc(*via_ipc);
  EXPECT_EQ(rewire, wire);  // content equality, byte for byte
}

TEST(SerdeAliasTest, SlicedColumnsKeepBatchStorageAlive) {
  Column slice;
  {
    Buffer wire = SerializeBatchIpc(MakeBatch(100));
    auto decoded = DeserializeBatchIpc(wire);
    ASSERT_TRUE(decoded.ok());
    slice = decoded->column(0).SliceRange(10, 20);
  }  // batch and wire handle both destroyed
  ASSERT_EQ(slice.length(), 20);
  for (int64_t i = 0; i < slice.length(); ++i) {
    EXPECT_EQ(slice.Int64At(i), 10 + i);
  }
}

TEST(SerdeAliasTest, MisalignedInputFallsBackToCopy) {
  // A hand-shifted buffer breaks the alignment guarantee; the deserializer
  // must still return correct data (by copying), never a misaligned view.
  RecordBatch original = MakeBatch(40);
  Buffer wire = SerializeBatchIpc(original);
  std::vector<uint8_t> shifted(wire.size() + 1);
  std::memcpy(shifted.data() + 1, wire.data(), wire.size());
  Buffer odd(std::move(shifted));
  auto decoded = DeserializeBatchIpc(odd.Slice(1, wire.size()));
  ASSERT_TRUE(decoded.ok());
  ExpectBatchesEqual(original, *decoded);
}

TEST(SerdeAliasTest, TruncatedBatchReportsCorruption) {
  Buffer wire = SerializeBatchIpc(MakeBatch(100));
  auto decoded = DeserializeBatchIpc(wire.Slice(0, wire.size() / 2));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(SerdeAliasTest, TensorViewsWireBufferAndOutlivesIt) {
  auto t = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(t.ok());
  Tensor decoded;
  {
    Buffer wire = SerializeTensor(*t);
    Buffer::ResetCopyStats();
    auto result = DeserializeTensor(wire);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->is_view());
    EXPECT_EQ(Buffer::copy_count(), 0u);
    decoded = std::move(result).value();
  }
  EXPECT_EQ(decoded.At(1, 2), 6.0);
  // Copy-on-write: mutating materializes owned storage.
  decoded.Set(0, 0, 42.0);
  EXPECT_FALSE(decoded.is_view());
  EXPECT_EQ(decoded.At(0, 0), 42.0);
}

}  // namespace
}  // namespace skadi
