#include "src/format/record_batch.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

RecordBatch MakeTestBatch() {
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kFloat64}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeInt64({1, 2, 3}),
               Column::MakeString({"ann", "bob", "eve"}),
               Column::MakeFloat64({0.5, 1.5, 2.5})});
  return std::move(batch).value();
}

TEST(SchemaTest, IndexOfFindsFields) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.IndexOf("a"), 0u);
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("c").has_value());
}

TEST(SchemaTest, ToStringListsFieldsAndTypes) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kBool}});
  EXPECT_EQ(s.ToString(), "{a: int64, b: bool}");
}

TEST(RecordBatchTest, MakeValidatesColumnCount) {
  Schema s({{"a", DataType::kInt64}});
  auto r = RecordBatch::Make(s, {});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordBatchTest, MakeValidatesTypes) {
  Schema s({{"a", DataType::kInt64}});
  auto r = RecordBatch::Make(s, {Column::MakeFloat64({1.0})});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordBatchTest, MakeValidatesLengths) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  auto r = RecordBatch::Make(s, {Column::MakeInt64({1}), Column::MakeInt64({1, 2})});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordBatchTest, BasicAccessors) {
  RecordBatch b = MakeTestBatch();
  EXPECT_EQ(b.num_rows(), 3);
  EXPECT_EQ(b.num_columns(), 3u);
  EXPECT_EQ(b.column(0).Int64At(1), 2);
  ASSERT_NE(b.ColumnByName("score"), nullptr);
  EXPECT_DOUBLE_EQ(b.ColumnByName("score")->Float64At(2), 2.5);
  EXPECT_EQ(b.ColumnByName("missing"), nullptr);
}

TEST(RecordBatchTest, EmptyHasSchemaZeroRows) {
  RecordBatch e = RecordBatch::Empty(
      Schema({{"x", DataType::kInt64}, {"y", DataType::kString}}));
  EXPECT_EQ(e.num_rows(), 0);
  EXPECT_EQ(e.num_columns(), 2u);
}

TEST(RecordBatchTest, TakeReordersRows) {
  RecordBatch b = MakeTestBatch();
  RecordBatch t = b.Take({2, 0});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.column(1).StringAt(0), "eve");
  EXPECT_EQ(t.column(1).StringAt(1), "ann");
}

TEST(RecordBatchTest, SliceClampsToBounds) {
  RecordBatch b = MakeTestBatch();
  EXPECT_EQ(b.Slice(1, 10).num_rows(), 2);
  EXPECT_EQ(b.Slice(5, 2).num_rows(), 0);
  EXPECT_EQ(b.Slice(-1, 2).num_rows(), 2);
  EXPECT_EQ(b.Slice(0, 2).column(0).Int64At(1), 2);
}

TEST(RecordBatchTest, ByteSizeIsSumOfColumns) {
  RecordBatch b = MakeTestBatch();
  size_t expected = 0;
  for (size_t c = 0; c < b.num_columns(); ++c) {
    expected += b.column(c).ByteSize();
  }
  EXPECT_EQ(b.ByteSize(), expected);
}

TEST(RecordBatchTest, ToStringTruncates) {
  RecordBatch b = MakeTestBatch();
  std::string s = b.ToString(2);
  EXPECT_NE(s.find("rows=3"), std::string::npos);
  EXPECT_NE(s.find("(1 more)"), std::string::npos);
}

TEST(ConcatBatchesTest, ConcatenatesInOrder) {
  RecordBatch a = MakeTestBatch();
  RecordBatch b = MakeTestBatch();
  auto r = ConcatBatches({a, b});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 6);
  EXPECT_EQ(r->column(0).Int64At(3), 1);  // second copy starts over
}

TEST(ConcatBatchesTest, RejectsSchemaMismatch) {
  RecordBatch a = MakeTestBatch();
  RecordBatch other = RecordBatch::Empty(Schema({{"z", DataType::kBool}}));
  auto r = ConcatBatches({a, other});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConcatBatchesTest, RejectsEmptyList) {
  auto r = ConcatBatches({});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConcatBatchesTest, PreservesNulls) {
  Schema s({{"v", DataType::kInt64}});
  auto a = RecordBatch::Make(s, {Column::MakeInt64({1, 0}, {1, 0})});
  auto b = RecordBatch::Make(s, {Column::MakeInt64({3})});
  auto r = ConcatBatches({std::move(a).value(), std::move(b).value()});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->column(0).IsNull(1));
  EXPECT_EQ(r->column(0).Int64At(2), 3);
}

}  // namespace
}  // namespace skadi
