#include "src/format/tensor.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(TensorTest, ZerosShapeAndData) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.num_elements(), 6);
  for (double v : t.data()) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(TensorTest, FromDataValidatesSize) {
  auto bad = Tensor::FromData({2, 2}, {1.0, 2.0, 3.0});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto good = Tensor::FromData({2, 2}, {1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->At(1, 0), 3.0);
}

TEST(TensorTest, RandomIsDeterministicPerSeed) {
  Rng r1(5);
  Rng r2(5);
  Tensor a = Tensor::Random({3, 3}, r1);
  Tensor b = Tensor::Random({3, 3}, r2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(TensorTest, RandomRespectsScale) {
  Rng rng(9);
  Tensor t = Tensor::Random({10, 10}, rng, 0.1);
  for (double v : t.data()) {
    EXPECT_LE(std::abs(v), 0.1);
  }
}

TEST(MatMulTest, KnownProduct) {
  auto a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  auto c = MatMul(*a, *b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->At(0, 0), 19);
  EXPECT_EQ(c->At(0, 1), 22);
  EXPECT_EQ(c->At(1, 0), 43);
  EXPECT_EQ(c->At(1, 1), 50);
}

TEST(MatMulTest, ShapeMismatchRejected) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 3});
  EXPECT_EQ(MatMul(a, b).status().code(), StatusCode::kInvalidArgument);
}

TEST(MatMulTest, IdentityPreserves) {
  auto a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto eye = Tensor::FromData({2, 2}, {1, 0, 0, 1});
  auto c = MatMul(*a, *eye);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->data(), a->data());
}

TEST(ElementwiseTest, AddSubMul) {
  auto a = Tensor::FromData({1, 3}, {1, 2, 3});
  auto b = Tensor::FromData({1, 3}, {10, 20, 30});
  EXPECT_EQ(Add(*a, *b)->data(), (std::vector<double>{11, 22, 33}));
  EXPECT_EQ(Sub(*b, *a)->data(), (std::vector<double>{9, 18, 27}));
  EXPECT_EQ(Mul(*a, *b)->data(), (std::vector<double>{10, 40, 90}));
}

TEST(ElementwiseTest, ShapeMismatchRejected) {
  Tensor a = Tensor::Zeros({2, 2});
  Tensor b = Tensor::Zeros({2, 3});
  EXPECT_FALSE(Add(a, b).ok());
}

TEST(AddRowVectorTest, BroadcastsAcrossRows) {
  auto a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto bias = Tensor::FromData({1, 2}, {10, 20});
  auto r = AddRowVector(*a, *bias);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(0, 0), 11);
  EXPECT_EQ(r->At(1, 1), 24);
}

TEST(AddRowVectorTest, WrongLengthRejected) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor bias = Tensor::Zeros({1, 2});
  EXPECT_FALSE(AddRowVector(a, bias).ok());
}

TEST(UnaryTest, ScaleReluSigmoid) {
  auto a = Tensor::FromData({1, 3}, {-1, 0, 2});
  EXPECT_EQ(Scale(*a, 2.0).data(), (std::vector<double>{-2, 0, 4}));
  EXPECT_EQ(Relu(*a).data(), (std::vector<double>{0, 0, 2}));
  Tensor s = Sigmoid(*a);
  EXPECT_NEAR(s.data()[1], 0.5, 1e-12);
  EXPECT_GT(s.data()[2], 0.5);
  EXPECT_LT(s.data()[0], 0.5);
}

TEST(TransposeTest, SwapsAxes) {
  auto a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(*a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(0, 1), 4);
  EXPECT_EQ(t.At(2, 0), 3);
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Random({4, 7}, rng);
  EXPECT_EQ(Transpose(Transpose(a)).data(), a.data());
}

TEST(ReduceTest, SumMeanColumnMean) {
  auto a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(ReduceSum(*a), 10.0);
  EXPECT_EQ(ReduceMean(*a), 2.5);
  Tensor cm = ColumnMean(*a);
  EXPECT_EQ(cm.rows(), 1);
  EXPECT_EQ(cm.At(0, 0), 2.0);
  EXPECT_EQ(cm.At(0, 1), 3.0);
}

TEST(ReduceTest, EmptyTensorMeanZero) {
  Tensor empty;
  EXPECT_EQ(ReduceMean(empty), 0.0);
}

// Property: (A*B)^T == B^T * A^T on random matrices.
TEST(MatMulTest, TransposeProductProperty) {
  Rng rng(77);
  Tensor a = Tensor::Random({3, 4}, rng);
  Tensor b = Tensor::Random({4, 5}, rng);
  auto ab = MatMul(a, b);
  ASSERT_TRUE(ab.ok());
  Tensor lhs = Transpose(*ab);
  auto rhs = MatMul(Transpose(b), Transpose(a));
  ASSERT_TRUE(rhs.ok());
  for (size_t i = 0; i < lhs.data().size(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs->data()[i], 1e-9);
  }
}

}  // namespace
}  // namespace skadi
