#include "src/format/serde.h"

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace skadi {
namespace {

RecordBatch MixedBatch() {
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kFloat64},
                 {"flag", DataType::kBool}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeInt64({1, 2, 3}, {1, 0, 1}),
               Column::MakeString({"ann", "", "eve"}),
               Column::MakeFloat64({0.5, 1.5, 2.5}),
               Column::MakeBool({1, 0, 1}, {1, 1, 0})});
  return std::move(batch).value();
}

void ExpectBatchesEqual(const RecordBatch& a, const RecordBatch& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.column(c).IsNull(r), b.column(c).IsNull(r))
          << "col " << c << " row " << r;
      if (!a.column(c).IsNull(r)) {
        EXPECT_EQ(a.column(c).ValueToString(r), b.column(c).ValueToString(r))
            << "col " << c << " row " << r;
      }
    }
  }
}

TEST(IpcSerdeTest, RoundTripsMixedBatch) {
  RecordBatch original = MixedBatch();
  Buffer encoded = SerializeBatchIpc(original);
  auto decoded = DeserializeBatchIpc(encoded);
  ASSERT_TRUE(decoded.ok());
  ExpectBatchesEqual(original, *decoded);
}

TEST(IpcSerdeTest, RoundTripsEmptyBatch) {
  RecordBatch empty = RecordBatch::Empty(
      Schema({{"a", DataType::kInt64}, {"s", DataType::kString}}));
  auto decoded = DeserializeBatchIpc(SerializeBatchIpc(empty));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_rows(), 0);
  EXPECT_TRUE(decoded->schema() == empty.schema());
}

TEST(IpcSerdeTest, BadMagicRejected) {
  auto r = DeserializeBatchIpc(Buffer::FromString("garbage data here"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(IpcSerdeTest, TruncatedBufferRejected) {
  Buffer encoded = SerializeBatchIpc(MixedBatch());
  Buffer truncated = Buffer::FromBytes(encoded.data(), encoded.size() / 2);
  auto r = DeserializeBatchIpc(truncated);
  EXPECT_FALSE(r.ok());
}

TEST(RowCodecTest, RoundTripsMixedBatch) {
  RecordBatch original = MixedBatch();
  Buffer encoded = SerializeBatchRowCodec(original);
  auto decoded = DeserializeBatchRowCodec(encoded);
  ASSERT_TRUE(decoded.ok());
  ExpectBatchesEqual(original, *decoded);
}

TEST(RowCodecTest, BadMagicRejected) {
  auto r = DeserializeBatchRowCodec(SerializeBatchIpc(MixedBatch()));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CrossCodecTest, FormatsAreDistinct) {
  Buffer ipc = SerializeBatchIpc(MixedBatch());
  Buffer row = SerializeBatchRowCodec(MixedBatch());
  EXPECT_FALSE(ipc == row);
}

TEST(TensorSerdeTest, RoundTrips) {
  Rng rng(4);
  Tensor t = Tensor::Random({5, 7}, rng);
  auto decoded = DeserializeTensor(SerializeTensor(t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shape(), t.shape());
  EXPECT_EQ(decoded->data(), t.data());
}

TEST(TensorSerdeTest, BadMagicRejected) {
  auto r = DeserializeTensor(Buffer::FromString("nope"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// The paper's marshalling claim, as a property: on a wide batch the columnar
// IPC path encodes+decodes meaningfully faster than row marshalling. This is
// a shape assertion (>1.2x), not a microbenchmark — the benches measure it
// properly.
TEST(CrossCodecTest, IpcFasterThanRowCodecOnLargeBatch) {
  Rng rng(1);
  ColumnBuilder ids(DataType::kInt64);
  ColumnBuilder names(DataType::kString);
  ColumnBuilder scores(DataType::kFloat64);
  for (int i = 0; i < 200000; ++i) {
    ids.AppendInt64(i);
    names.AppendString(rng.NextString(8));
    scores.AppendFloat64(rng.NextDouble());
  }
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kFloat64}});
  auto batch = RecordBatch::Make(schema, {ids.Finish(), names.Finish(), scores.Finish()});
  ASSERT_TRUE(batch.ok());

  Stopwatch ipc_watch;
  for (int i = 0; i < 3; ++i) {
    auto decoded = DeserializeBatchIpc(SerializeBatchIpc(*batch));
    ASSERT_TRUE(decoded.ok());
  }
  double ipc_ms = ipc_watch.ElapsedMillis();

  Stopwatch row_watch;
  for (int i = 0; i < 3; ++i) {
    auto decoded = DeserializeBatchRowCodec(SerializeBatchRowCodec(*batch));
    ASSERT_TRUE(decoded.ok());
  }
  double row_ms = row_watch.ElapsedMillis();

  EXPECT_GT(row_ms, ipc_ms * 1.2)
      << "row codec should be meaningfully slower (ipc=" << ipc_ms
      << "ms row=" << row_ms << "ms)";
}

}  // namespace
}  // namespace skadi
