#include "src/format/expr.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

RecordBatch MakeBatch() {
  Schema schema({{"i", DataType::kInt64},
                 {"f", DataType::kFloat64},
                 {"s", DataType::kString},
                 {"b", DataType::kBool}});
  auto batch = RecordBatch::Make(
      schema,
      {Column::MakeInt64({1, 2, 3, 4}), Column::MakeFloat64({0.5, 1.0, 1.5, 2.0}),
       Column::MakeString({"a", "bb", "ccc", "dd"}),
       Column::MakeBool({1, 0, 1, 0})});
  return std::move(batch).value();
}

TEST(ExprTest, ColumnReference) {
  auto r = EvalExpr(*Expr::Col("i"), MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Int64At(2), 3);
}

TEST(ExprTest, MissingColumnFails) {
  auto r = EvalExpr(*Expr::Col("nope"), MakeBatch());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ExprTest, LiteralBroadcasts) {
  auto r = EvalExpr(*Expr::Int(7), MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->length(), 4);
  EXPECT_EQ(r->Int64At(0), 7);
  EXPECT_EQ(r->Int64At(3), 7);
}

TEST(ExprTest, IntArithmetic) {
  auto e = Expr::Binary(BinaryOp::kMul, Expr::Col("i"), Expr::Int(10));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kInt64);
  EXPECT_EQ(r->Int64At(3), 40);
}

TEST(ExprTest, MixedArithmeticPromotesToFloat) {
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Col("i"), Expr::Col("f"));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(r->Float64At(1), 3.0);
}

TEST(ExprTest, DivisionByZeroYieldsNull) {
  auto e = Expr::Binary(BinaryOp::kDiv, Expr::Col("i"), Expr::Int(0));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsNull(0));
  EXPECT_EQ(r->null_count(), 4);
}

TEST(ExprTest, ModuloWorks) {
  auto e = Expr::Binary(BinaryOp::kMod, Expr::Col("i"), Expr::Int(2));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Int64At(0), 1);
  EXPECT_EQ(r->Int64At(1), 0);
}

TEST(ExprTest, IntComparison) {
  auto e = Expr::Binary(BinaryOp::kGe, Expr::Col("i"), Expr::Int(3));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kBool);
  EXPECT_FALSE(r->BoolAt(1));
  EXPECT_TRUE(r->BoolAt(2));
}

TEST(ExprTest, StringComparison) {
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Col("s"), Expr::Str("bb"));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->BoolAt(1));
  EXPECT_FALSE(r->BoolAt(0));
}

TEST(ExprTest, StringOrderingComparison) {
  auto e = Expr::Binary(BinaryOp::kLt, Expr::Col("s"), Expr::Str("cc"));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->BoolAt(0));   // "a" < "cc"
  EXPECT_TRUE(r->BoolAt(1));   // "bb" < "cc"
  EXPECT_FALSE(r->BoolAt(2));  // "ccc" > "cc"
}

TEST(ExprTest, StringArithmeticRejected) {
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Col("s"), Expr::Str("x"));
  auto r = EvalExpr(*e, MakeBatch());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprTest, LogicalAndOr) {
  auto ge2 = Expr::Binary(BinaryOp::kGe, Expr::Col("i"), Expr::Int(2));
  auto both = Expr::Binary(BinaryOp::kAnd, ge2, Expr::Col("b"));
  auto r = EvalExpr(*both, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->BoolAt(0));  // i=1 fails ge2
  EXPECT_FALSE(r->BoolAt(1));  // b=false
  EXPECT_TRUE(r->BoolAt(2));

  auto either = Expr::Binary(BinaryOp::kOr, ge2, Expr::Col("b"));
  auto r2 = EvalExpr(*either, MakeBatch());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->BoolAt(0));  // b=true
}

TEST(ExprTest, NotNegates) {
  auto r = EvalExpr(*Expr::Not(Expr::Col("b")), MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->BoolAt(0));
  EXPECT_TRUE(r->BoolAt(1));
}

TEST(ExprTest, NotRequiresBool) {
  auto r = EvalExpr(*Expr::Not(Expr::Col("i")), MakeBatch());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprTest, NullsPropagate) {
  Schema schema({{"v", DataType::kInt64}});
  auto batch =
      RecordBatch::Make(schema, {Column::MakeInt64({5, 6}, {1, 0})});
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Col("v"), Expr::Int(1));
  auto r = EvalExpr(*e, std::move(batch).value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Int64At(0), 6);
  EXPECT_TRUE(r->IsNull(1));
}

TEST(ExprTest, ToStringRendersTree) {
  auto e = Expr::Binary(BinaryOp::kGt,
                        Expr::Binary(BinaryOp::kMul, Expr::Col("price"), Expr::Col("qty")),
                        Expr::Int(100));
  EXPECT_EQ(e->ToString(), "((price * qty) > 100)");
}

TEST(ExprTest, ReferencedColumnsDeduplicated) {
  auto e = Expr::Binary(BinaryOp::kAdd,
                        Expr::Binary(BinaryOp::kMul, Expr::Col("a"), Expr::Col("b")),
                        Expr::Col("a"));
  auto cols = e->ReferencedColumns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "a");
  EXPECT_EQ(cols[1], "b");
}

TEST(ExprTest, BoolEquality) {
  auto e = Expr::Binary(BinaryOp::kNe, Expr::Col("b"), Expr::Bool(false));
  auto r = EvalExpr(*e, MakeBatch());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->BoolAt(0));
  EXPECT_FALSE(r->BoolAt(1));
}

}  // namespace
}  // namespace skadi
