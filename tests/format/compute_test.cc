#include "src/format/compute.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace skadi {
namespace {

RecordBatch SalesBatch() {
  Schema schema({{"region", DataType::kString},
                 {"amount", DataType::kInt64},
                 {"price", DataType::kFloat64}});
  auto batch = RecordBatch::Make(
      schema,
      {Column::MakeString({"east", "west", "east", "north", "west", "east"}),
       Column::MakeInt64({10, 20, 30, 40, 50, 60}),
       Column::MakeFloat64({1.0, 2.0, 3.0, 4.0, 5.0, 6.0})});
  return std::move(batch).value();
}

TEST(FilterTest, KeepsMatchingRows) {
  auto pred = Expr::Binary(BinaryOp::kGt, Expr::Col("amount"), Expr::Int(25));
  auto r = FilterBatch(SalesBatch(), *pred);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 4);
  EXPECT_EQ(r->column(1).Int64At(0), 30);
}

TEST(FilterTest, NullPredicateRowsDrop) {
  Schema schema({{"v", DataType::kInt64}});
  auto batch = RecordBatch::Make(schema, {Column::MakeInt64({1, 2, 3}, {1, 0, 1})});
  auto pred = Expr::Binary(BinaryOp::kGt, Expr::Col("v"), Expr::Int(0));
  auto r = FilterBatch(std::move(batch).value(), *pred);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2);  // the null row drops
}

TEST(FilterTest, NonBoolPredicateRejected) {
  auto r = FilterBatch(SalesBatch(), *Expr::Col("amount"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProjectTest, ComputesExpressions) {
  std::vector<ProjectionSpec> projections = {
      {Expr::Col("region"), "region"},
      {Expr::Binary(BinaryOp::kMul, Expr::Col("amount"), Expr::Col("price")), "total"}};
  auto r = ProjectBatch(SalesBatch(), projections);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_columns(), 2u);
  EXPECT_EQ(r->schema().field(1).name, "total");
  EXPECT_DOUBLE_EQ(r->column(1).Float64At(2), 90.0);
}

TEST(ProjectTest, NullExprRejected) {
  auto r = ProjectBatch(SalesBatch(), {{nullptr, "x"}});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HashPartitionTest, PartitionsCoverAllRows) {
  auto r = HashPartitionBatch(SalesBatch(), {"region"}, 4);
  ASSERT_TRUE(r.ok());
  int64_t total = 0;
  for (const RecordBatch& p : *r) {
    total += p.num_rows();
  }
  EXPECT_EQ(total, 6);
}

TEST(HashPartitionTest, SameKeySamePartition) {
  auto r = HashPartitionBatch(SalesBatch(), {"region"}, 4);
  ASSERT_TRUE(r.ok());
  // All "east" rows must land in exactly one partition.
  int partitions_with_east = 0;
  for (const RecordBatch& p : *r) {
    bool has_east = false;
    for (int64_t i = 0; i < p.num_rows(); ++i) {
      if (p.column(0).StringAt(i) == "east") {
        has_east = true;
      }
    }
    partitions_with_east += has_east ? 1 : 0;
  }
  EXPECT_EQ(partitions_with_east, 1);
}

TEST(HashPartitionTest, ZeroPartitionsRejected) {
  auto r = HashPartitionBatch(SalesBatch(), {"region"}, 0);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HashPartitionTest, UnknownKeyRejected) {
  auto r = HashPartitionBatch(SalesBatch(), {"nope"}, 2);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// Property: partitioning then concatenating preserves the multiset of rows
// and group-aggregate results (the shuffle correctness invariant).
TEST(HashPartitionTest, PartitionPreservesAggregates) {
  Rng rng(42);
  ColumnBuilder keys(DataType::kInt64);
  ColumnBuilder vals(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) {
    keys.AppendInt64(static_cast<int64_t>(rng.NextBounded(20)));
    vals.AppendInt64(static_cast<int64_t>(rng.NextBounded(100)));
  }
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  auto batch = RecordBatch::Make(schema, {keys.Finish(), vals.Finish()});
  ASSERT_TRUE(batch.ok());

  auto whole = GroupAggregateBatch(*batch, {"k"}, {{AggKind::kSum, "v", "sum_v"}});
  ASSERT_TRUE(whole.ok());

  auto parts = HashPartitionBatch(*batch, {"k"}, 8);
  ASSERT_TRUE(parts.ok());
  std::vector<RecordBatch> partials;
  for (const RecordBatch& p : *parts) {
    auto agg = GroupAggregateBatch(p, {"k"}, {{AggKind::kSum, "v", "sum_v"}});
    ASSERT_TRUE(agg.ok());
    partials.push_back(std::move(agg).value());
  }
  auto merged = ConcatBatches(partials);
  ASSERT_TRUE(merged.ok());
  // Each key appears in exactly one partition, so merged partials == whole.
  EXPECT_EQ(merged->num_rows(), whole->num_rows());

  auto sorted_whole = SortBatch(*whole, {{"k", true}});
  auto sorted_merged = SortBatch(*merged, {{"k", true}});
  ASSERT_TRUE(sorted_whole.ok());
  ASSERT_TRUE(sorted_merged.ok());
  for (int64_t i = 0; i < sorted_whole->num_rows(); ++i) {
    EXPECT_EQ(sorted_whole->column(0).Int64At(i), sorted_merged->column(0).Int64At(i));
    EXPECT_EQ(sorted_whole->column(1).Int64At(i), sorted_merged->column(1).Int64At(i));
  }
}

TEST(GroupAggregateTest, GroupedSumCountMinMaxMean) {
  auto r = GroupAggregateBatch(SalesBatch(), {"region"},
                               {{AggKind::kSum, "amount", "sum_a"},
                                {AggKind::kCount, "*", "cnt"},
                                {AggKind::kMin, "amount", "min_a"},
                                {AggKind::kMax, "amount", "max_a"},
                                {AggKind::kMean, "price", "avg_p"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3);  // east, west, north
  auto sorted = SortBatch(*r, {{"region", true}});
  ASSERT_TRUE(sorted.ok());
  // Row 0: east (10+30+60).
  EXPECT_EQ(sorted->column(0).StringAt(0), "east");
  EXPECT_EQ(sorted->ColumnByName("sum_a")->Int64At(0), 100);
  EXPECT_EQ(sorted->ColumnByName("cnt")->Int64At(0), 3);
  EXPECT_EQ(sorted->ColumnByName("min_a")->Int64At(0), 10);
  EXPECT_EQ(sorted->ColumnByName("max_a")->Int64At(0), 60);
  EXPECT_NEAR(sorted->ColumnByName("avg_p")->Float64At(0), (1.0 + 3.0 + 6.0) / 3, 1e-9);
}

TEST(GroupAggregateTest, GlobalAggregationOneRow) {
  auto r = GroupAggregateBatch(SalesBatch(), {},
                               {{AggKind::kSum, "amount", "total"},
                                {AggKind::kCount, "*", "n"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1);
  EXPECT_EQ(r->ColumnByName("total")->Int64At(0), 210);
  EXPECT_EQ(r->ColumnByName("n")->Int64At(0), 6);
}

TEST(GroupAggregateTest, EmptyInputGlobalStillEmitsRow) {
  RecordBatch empty = RecordBatch::Empty(
      Schema({{"v", DataType::kInt64}}));
  auto r = GroupAggregateBatch(empty, {}, {{AggKind::kCount, "*", "n"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1);
  EXPECT_EQ(r->column(0).Int64At(0), 0);
}

TEST(GroupAggregateTest, NullsSkippedInAggregates) {
  Schema schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeInt64({1, 1, 1}), Column::MakeInt64({5, 0, 7}, {1, 0, 1})});
  auto r = GroupAggregateBatch(std::move(batch).value(), {"g"},
                               {{AggKind::kSum, "v", "s"}, {AggKind::kCount, "v", "c"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ColumnByName("s")->Int64At(0), 12);
  EXPECT_EQ(r->ColumnByName("c")->Int64At(0), 2);
}

TEST(GroupAggregateTest, MeanOverFloats) {
  auto r = GroupAggregateBatch(SalesBatch(), {}, {{AggKind::kMean, "price", "m"}});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->column(0).Float64At(0), 3.5, 1e-9);
}

TEST(GroupAggregateTest, StringMinMax) {
  auto r = GroupAggregateBatch(SalesBatch(), {},
                               {{AggKind::kMin, "region", "first"},
                                {AggKind::kMax, "region", "last"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).StringAt(0), "east");
  EXPECT_EQ(r->column(1).StringAt(0), "west");
}

TEST(SortTest, SingleKeyAscending) {
  auto r = SortBatch(SalesBatch(), {{"amount", false}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(1).Int64At(0), 60);
  EXPECT_EQ(r->column(1).Int64At(5), 10);
}

TEST(SortTest, MultiKeyWithTies) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeInt64({1, 1, 0, 0}), Column::MakeInt64({9, 3, 7, 1})});
  auto r = SortBatch(std::move(batch).value(), {{"a", true}, {"b", true}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).Int64At(0), 0);
  EXPECT_EQ(r->column(1).Int64At(0), 1);
  EXPECT_EQ(r->column(1).Int64At(1), 7);
  EXPECT_EQ(r->column(1).Int64At(2), 3);
  EXPECT_EQ(r->column(1).Int64At(3), 9);
}

TEST(SortTest, NullsFirstAscending) {
  Schema schema({{"v", DataType::kInt64}});
  auto batch = RecordBatch::Make(schema, {Column::MakeInt64({3, 0, 1}, {1, 0, 1})});
  auto r = SortBatch(std::move(batch).value(), {{"v", true}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->column(0).IsNull(0));
  EXPECT_EQ(r->column(0).Int64At(1), 1);
  EXPECT_EQ(r->column(0).Int64At(2), 3);
}

TEST(SortTest, StableForEqualKeys) {
  Schema schema({{"k", DataType::kInt64}, {"ord", DataType::kInt64}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeInt64({1, 1, 1}), Column::MakeInt64({0, 1, 2})});
  auto r = SortBatch(std::move(batch).value(), {{"k", true}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(1).Int64At(0), 0);
  EXPECT_EQ(r->column(1).Int64At(2), 2);
}

RecordBatch RegionDimBatch() {
  Schema schema({{"region", DataType::kString}, {"manager", DataType::kString}});
  auto batch = RecordBatch::Make(
      schema, {Column::MakeString({"east", "west"}),
               Column::MakeString({"alice", "bruno"})});
  return std::move(batch).value();
}

TEST(HashJoinTest, InnerJoinMatchesKeys) {
  auto r = HashJoinBatch(SalesBatch(), RegionDimBatch(), {"region"}, {"region"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5);  // north has no match
  const Column* manager = r->ColumnByName("manager");
  ASSERT_NE(manager, nullptr);
  for (int64_t i = 0; i < r->num_rows(); ++i) {
    std::string_view region = r->column(0).StringAt(i);
    std::string_view mgr = manager->StringAt(i);
    EXPECT_EQ(mgr, region == "east" ? "alice" : "bruno");
  }
}

TEST(HashJoinTest, DuplicateBuildKeysMultiply) {
  Schema schema({{"k", DataType::kInt64}, {"tag", DataType::kString}});
  auto right = RecordBatch::Make(
      schema, {Column::MakeInt64({1, 1}), Column::MakeString({"x", "y"})});
  Schema lschema({{"k", DataType::kInt64}});
  auto left = RecordBatch::Make(lschema, {Column::MakeInt64({1})});
  auto r = HashJoinBatch(std::move(left).value(), std::move(right).value(), {"k"}, {"k"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Schema schema({{"k", DataType::kInt64}});
  auto left = RecordBatch::Make(schema, {Column::MakeInt64({1, 0}, {1, 0})});
  auto right = RecordBatch::Make(schema, {Column::MakeInt64({1, 0}, {1, 0})});
  auto r = HashJoinBatch(std::move(left).value(), std::move(right).value(), {"k"}, {"k"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1);
}

TEST(HashJoinTest, NameClashGetsSuffix) {
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  auto left = RecordBatch::Make(
      schema, {Column::MakeInt64({1}), Column::MakeInt64({10})});
  auto right = RecordBatch::Make(
      schema, {Column::MakeInt64({1}), Column::MakeInt64({20})});
  auto r = HashJoinBatch(std::move(left).value(), std::move(right).value(), {"k"}, {"k"});
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->ColumnByName("v"), nullptr);
  ASSERT_NE(r->ColumnByName("v_r"), nullptr);
  EXPECT_EQ(r->ColumnByName("v")->Int64At(0), 10);
  EXPECT_EQ(r->ColumnByName("v_r")->Int64At(0), 20);
}

TEST(HashJoinTest, KeyTypeMismatchRejected) {
  Schema l({{"k", DataType::kInt64}});
  Schema rr({{"k", DataType::kString}});
  auto left = RecordBatch::Make(l, {Column::MakeInt64({1})});
  auto right = RecordBatch::Make(rr, {Column::MakeString({"1"})});
  auto r = HashJoinBatch(std::move(left).value(), std::move(right).value(), {"k"}, {"k"});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HashJoinTest, EmptyKeyListRejected) {
  auto r = HashJoinBatch(SalesBatch(), RegionDimBatch(), {}, {});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(LimitTest, TakesPrefix) {
  RecordBatch r = LimitBatch(SalesBatch(), 2);
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.column(1).Int64At(1), 20);
}

TEST(LimitTest, OverLongLimitClamped) {
  EXPECT_EQ(LimitBatch(SalesBatch(), 100).num_rows(), 6);
}

}  // namespace
}  // namespace skadi
