// Randomized parity tests: the vectorized kernels (and their morsel-parallel
// variants) must produce the same results as the retained row-at-a-time
// implementations in skadi::reference, across key types, null patterns, and
// row counts that straddle morsel boundaries.
//
// Comparison rules follow the kernel contracts (src/format/compute.h):
//   - Filter and hash-partition are order-deterministic: compared cell by
//     cell in row order, bit-exact.
//   - Group-by and join may emit rows in a different (still deterministic)
//     order: both sides are canonically sorted before comparing. Float
//     aggregate cells use a relative tolerance because morsel-parallel runs
//     accumulate sums in chunk order.
#include "src/format/compute.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/random.h"

namespace skadi {
namespace {

// Tiny morsels + no size threshold so even small batches cross several
// morsel boundaries on the parallel path. 257 is deliberately odd.
ComputeOptions ParallelOptions() {
  ComputeOptions options;
  options.num_threads = 4;
  options.morsel_rows = 257;
  options.parallel_threshold_rows = 1;
  return options;
}

// An exact, order-able rendering of one cell. Floats use the bit pattern so
// distinct values never collide; nulls sort as their own value.
std::string CellKey(const Column& col, int64_t row) {
  if (col.IsNull(row)) {
    return "\x01null";
  }
  switch (col.type()) {
    case DataType::kInt64:
      return "i" + std::to_string(col.Int64At(row));
    case DataType::kFloat64: {
      double d = col.Float64At(row);
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      return "f" + std::to_string(bits);
    }
    case DataType::kBool:
      return col.BoolAt(row) ? "b1" : "b0";
    case DataType::kString:
      return "s" + std::string(col.StringAt(row));
  }
  return "?";
}

// Rows sorted by the rendered values of `key_cols` (all columns if empty).
std::vector<int64_t> SortedOrder(const RecordBatch& batch,
                                 const std::vector<size_t>& key_cols) {
  std::vector<std::string> keys(static_cast<size_t>(batch.num_rows()));
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    std::string k;
    if (key_cols.empty()) {
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        k += CellKey(batch.column(c), r);
        k += '\x02';
      }
    } else {
      for (size_t c : key_cols) {
        k += CellKey(batch.column(c), r);
        k += '\x02';
      }
    }
    keys[static_cast<size_t>(r)] = std::move(k);
  }
  std::vector<int64_t> order(static_cast<size_t>(batch.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });
  return order;
}

void ExpectCellEq(const Column& expected, int64_t er, const Column& actual,
                  int64_t ar, bool float_tolerant, const std::string& where) {
  ASSERT_EQ(expected.type(), actual.type()) << where;
  ASSERT_EQ(expected.IsNull(er), actual.IsNull(ar)) << where;
  if (expected.IsNull(er)) {
    return;
  }
  switch (expected.type()) {
    case DataType::kInt64:
      EXPECT_EQ(expected.Int64At(er), actual.Int64At(ar)) << where;
      break;
    case DataType::kFloat64: {
      double e = expected.Float64At(er);
      double a = actual.Float64At(ar);
      if (float_tolerant) {
        EXPECT_NEAR(a, e, 1e-9 * (1.0 + std::abs(e))) << where;
      } else {
        EXPECT_EQ(e, a) << where;
      }
      break;
    }
    case DataType::kBool:
      EXPECT_EQ(expected.BoolAt(er), actual.BoolAt(ar)) << where;
      break;
    case DataType::kString:
      EXPECT_EQ(expected.StringAt(er), actual.StringAt(ar)) << where;
      break;
  }
}

// Exact row-order comparison (filter, partition).
void ExpectBatchesEqual(const RecordBatch& expected, const RecordBatch& actual,
                        const std::string& where) {
  ASSERT_EQ(expected.schema(), actual.schema()) << where;
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << where;
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    for (int64_t r = 0; r < expected.num_rows(); ++r) {
      ExpectCellEq(expected.column(c), r, actual.column(c), r,
                   /*float_tolerant=*/false,
                   where + " col=" + expected.schema().field(c).name +
                       " row=" + std::to_string(r));
    }
  }
}

// Order-insensitive comparison: sort both sides by `sort_cols` (or the whole
// row when empty), then compare. Columns listed in `tolerant_cols` compare
// floats with tolerance.
void ExpectBatchesEqualSorted(const RecordBatch& expected, const RecordBatch& actual,
                              const std::vector<size_t>& sort_cols,
                              const std::vector<size_t>& tolerant_cols,
                              const std::string& where) {
  ASSERT_EQ(expected.schema(), actual.schema()) << where;
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << where;
  std::vector<int64_t> eorder = SortedOrder(expected, sort_cols);
  std::vector<int64_t> aorder = SortedOrder(actual, sort_cols);
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    bool tolerant = std::find(tolerant_cols.begin(), tolerant_cols.end(), c) !=
                    tolerant_cols.end();
    for (int64_t i = 0; i < expected.num_rows(); ++i) {
      ExpectCellEq(expected.column(c), eorder[static_cast<size_t>(i)],
                   actual.column(c), aorder[static_cast<size_t>(i)], tolerant,
                   where + " col=" + expected.schema().field(c).name +
                       " sorted_row=" + std::to_string(i));
    }
  }
}

// A batch exercising every column type, multi-type keys, and nulls:
//   k_i64 (card ~23), k_str (card 7), k_f64 (card 11), k_bool, v_i64, v_f64.
// null_rate applies independently per nullable column.
RecordBatch MakeMixedBatch(int64_t rows, double null_rate, uint64_t seed) {
  Rng rng(seed);
  ColumnBuilder k_i64(DataType::kInt64);
  ColumnBuilder k_str(DataType::kString);
  ColumnBuilder k_f64(DataType::kFloat64);
  ColumnBuilder k_bool(DataType::kBool);
  ColumnBuilder v_i64(DataType::kInt64);
  ColumnBuilder v_f64(DataType::kFloat64);
  for (int64_t r = 0; r < rows; ++r) {
    if (rng.NextBool(null_rate)) {
      k_i64.AppendNull();
    } else {
      k_i64.AppendInt64(static_cast<int64_t>(rng.NextBounded(23)));
    }
    if (rng.NextBool(null_rate)) {
      k_str.AppendNull();
    } else {
      k_str.AppendString("key_" + std::to_string(rng.NextBounded(7)));
    }
    if (rng.NextBool(null_rate)) {
      k_f64.AppendNull();
    } else {
      k_f64.AppendFloat64(static_cast<double>(rng.NextBounded(11)) * 0.25);
    }
    k_bool.AppendBool(rng.NextBool());
    v_i64.AppendInt64(rng.NextI64InRange(-1000, 1000));
    if (rng.NextBool(null_rate)) {
      v_f64.AppendNull();
    } else {
      v_f64.AppendFloat64(rng.NextDouble() * 100.0);
    }
  }
  Schema schema({{"k_i64", DataType::kInt64},
                 {"k_str", DataType::kString},
                 {"k_f64", DataType::kFloat64},
                 {"k_bool", DataType::kBool},
                 {"v_i64", DataType::kInt64},
                 {"v_f64", DataType::kFloat64}});
  auto batch = RecordBatch::Make(
      schema, {k_i64.Finish(), k_str.Finish(), k_f64.Finish(), k_bool.Finish(),
               v_i64.Finish(), v_f64.Finish()});
  return std::move(batch).value();
}

// Row counts chosen to straddle the test morsel size (257): empty, single,
// one under/at/over a boundary, several morsels, and a large-ish batch.
const int64_t kRowCounts[] = {0, 1, 256, 257, 258, 1000, 5000};
const double kNullRates[] = {0.0, 0.15};

struct ParityCase {
  int64_t rows;
  double null_rate;
  uint64_t seed;
  std::string Name() const {
    return "rows=" + std::to_string(rows) +
           " null_rate=" + std::to_string(null_rate);
  }
};

std::vector<ParityCase> Cases() {
  std::vector<ParityCase> cases;
  uint64_t seed = 1;
  for (int64_t rows : kRowCounts) {
    for (double nr : kNullRates) {
      cases.push_back({rows, nr, seed++});
    }
  }
  return cases;
}

TEST(ComputeParityTest, Filter) {
  for (const ParityCase& pc : Cases()) {
    RecordBatch batch = MakeMixedBatch(pc.rows, pc.null_rate, pc.seed);
    // ~50% selectivity; nulls in v_f64 drop rows.
    ExprPtr pred =
        Expr::Binary(BinaryOp::kLt, Expr::Col("v_f64"), Expr::Float(50.0));
    auto expected = reference::FilterBatch(batch, *pred);
    ASSERT_TRUE(expected.ok()) << pc.Name();
    auto vec = FilterBatch(batch, *pred);
    ASSERT_TRUE(vec.ok()) << pc.Name();
    ExpectBatchesEqual(*expected, *vec, "filter/vectorized " + pc.Name());
    auto par = FilterBatch(batch, *pred, ParallelOptions());
    ASSERT_TRUE(par.ok()) << pc.Name();
    ExpectBatchesEqual(*expected, *par, "filter/parallel " + pc.Name());
  }
}

TEST(ComputeParityTest, HashPartition) {
  const uint32_t kParts = 7;
  const std::vector<std::string> keys = {"k_i64", "k_str"};
  for (const ParityCase& pc : Cases()) {
    RecordBatch batch = MakeMixedBatch(pc.rows, pc.null_rate, pc.seed);
    auto expected = reference::HashPartitionBatch(batch, keys, kParts);
    ASSERT_TRUE(expected.ok()) << pc.Name();
    auto vec = HashPartitionBatch(batch, keys, kParts);
    ASSERT_TRUE(vec.ok()) << pc.Name();
    auto par = HashPartitionBatch(batch, keys, kParts, ParallelOptions());
    ASSERT_TRUE(par.ok()) << pc.Name();
    ASSERT_EQ(expected->size(), vec->size());
    ASSERT_EQ(expected->size(), par->size());
    for (size_t p = 0; p < expected->size(); ++p) {
      std::string where = " part=" + std::to_string(p) + " " + pc.Name();
      ExpectBatchesEqual((*expected)[p], (*vec)[p], "partition/vectorized" + where);
      ExpectBatchesEqual((*expected)[p], (*par)[p], "partition/parallel" + where);
    }
  }
}

void CheckGroupByParity(const std::vector<std::string>& group_by,
                        const std::string& label) {
  const std::vector<AggregateSpec> aggs = {
      {AggKind::kCount, "", "n"},          {AggKind::kSum, "v_i64", "isum"},
      {AggKind::kSum, "v_f64", "fsum"},    {AggKind::kMin, "v_f64", "fmin"},
      {AggKind::kMax, "v_i64", "imax"},    {AggKind::kMean, "v_f64", "fmean"},
      {AggKind::kMin, "k_str", "smin"}};
  for (const ParityCase& pc : Cases()) {
    RecordBatch batch = MakeMixedBatch(pc.rows, pc.null_rate, pc.seed);
    auto expected = reference::GroupAggregateBatch(batch, group_by, aggs);
    ASSERT_TRUE(expected.ok()) << label << " " << pc.Name();
    auto vec = GroupAggregateBatch(batch, group_by, aggs);
    ASSERT_TRUE(vec.ok()) << label << " " << pc.Name();
    auto par = GroupAggregateBatch(batch, group_by, aggs, ParallelOptions());
    ASSERT_TRUE(par.ok()) << label << " " << pc.Name();
    // Sort by group keys (unique per output row); float aggregates get
    // tolerance since parallel runs accumulate in chunk order.
    std::vector<size_t> sort_cols(group_by.size());
    std::iota(sort_cols.begin(), sort_cols.end(), 0);
    std::vector<size_t> tolerant_cols;
    for (size_t c = group_by.size(); c < expected->num_columns(); ++c) {
      if (expected->column(c).type() == DataType::kFloat64) {
        tolerant_cols.push_back(c);
      }
    }
    ExpectBatchesEqualSorted(*expected, *vec, sort_cols, tolerant_cols,
                             "groupby/vectorized " + label + " " + pc.Name());
    ExpectBatchesEqualSorted(*expected, *par, sort_cols, tolerant_cols,
                             "groupby/parallel " + label + " " + pc.Name());
  }
}

TEST(ComputeParityTest, GroupByInt64Key) { CheckGroupByParity({"k_i64"}, "i64"); }

TEST(ComputeParityTest, GroupByStringKey) { CheckGroupByParity({"k_str"}, "str"); }

TEST(ComputeParityTest, GroupByFloatKey) { CheckGroupByParity({"k_f64"}, "f64"); }

TEST(ComputeParityTest, GroupByBoolKey) { CheckGroupByParity({"k_bool"}, "bool"); }

TEST(ComputeParityTest, GroupByMultiKey) {
  CheckGroupByParity({"k_i64", "k_str", "k_bool"}, "multi");
}

TEST(ComputeParityTest, GroupByGlobal) { CheckGroupByParity({}, "global"); }

void CheckJoinParity(const std::vector<std::string>& keys, const std::string& label) {
  for (const ParityCase& pc : Cases()) {
    // Low-cardinality keys give quadratic-ish match fan-out; cap the probe
    // side so the canonical-sort comparison stays fast under sanitizers
    // (the boundary cases <= 1000 all still run).
    const int64_t left_rows = std::min<int64_t>(pc.rows, 1500);
    RecordBatch left = MakeMixedBatch(left_rows, pc.null_rate, pc.seed);
    // Build side: different row count and seed so match fan-out varies.
    RecordBatch right = MakeMixedBatch(pc.rows / 3 + 37, pc.null_rate, pc.seed + 100);
    auto expected = reference::HashJoinBatch(left, right, keys, keys);
    ASSERT_TRUE(expected.ok()) << label << " " << pc.Name();
    auto vec = HashJoinBatch(left, right, keys, keys);
    ASSERT_TRUE(vec.ok()) << label << " " << pc.Name();
    auto par = HashJoinBatch(left, right, keys, keys, ParallelOptions());
    ASSERT_TRUE(par.ok()) << label << " " << pc.Name();
    // Join output cells are pure gathers (bit-exact); rows may interleave
    // differently for duplicate keys, so sort by the full row.
    ExpectBatchesEqualSorted(*expected, *vec, {}, {},
                             "join/vectorized " + label + " " + pc.Name());
    ExpectBatchesEqualSorted(*expected, *par, {}, {},
                             "join/parallel " + label + " " + pc.Name());
  }
}

TEST(ComputeParityTest, JoinInt64Key) { CheckJoinParity({"k_i64"}, "i64"); }

TEST(ComputeParityTest, JoinStringKey) { CheckJoinParity({"k_str"}, "str"); }

TEST(ComputeParityTest, JoinMultiKey) {
  CheckJoinParity({"k_i64", "k_bool"}, "multi");
}

}  // namespace
}  // namespace skadi
