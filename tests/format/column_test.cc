#include "src/format/column.h"

#include <gtest/gtest.h>

namespace skadi {
namespace {

TEST(ColumnTest, MakeInt64) {
  Column c = Column::MakeInt64({1, 2, 3});
  EXPECT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.length(), 3);
  EXPECT_EQ(c.Int64At(0), 1);
  EXPECT_EQ(c.Int64At(2), 3);
  EXPECT_FALSE(c.has_nulls());
}

TEST(ColumnTest, MakeFloat64) {
  Column c = Column::MakeFloat64({1.5, -2.5});
  EXPECT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.Float64At(1), -2.5);
}

TEST(ColumnTest, MakeBool) {
  Column c = Column::MakeBool({1, 0, 1});
  EXPECT_TRUE(c.BoolAt(0));
  EXPECT_FALSE(c.BoolAt(1));
}

TEST(ColumnTest, MakeString) {
  Column c = Column::MakeString({"alpha", "", "gamma"});
  EXPECT_EQ(c.type(), DataType::kString);
  EXPECT_EQ(c.StringAt(0), "alpha");
  EXPECT_EQ(c.StringAt(1), "");
  EXPECT_EQ(c.StringAt(2), "gamma");
}

TEST(ColumnTest, ValidityMarksNulls) {
  Column c = Column::MakeInt64({10, 20, 30}, {1, 0, 1});
  EXPECT_TRUE(c.has_nulls());
  EXPECT_EQ(c.null_count(), 1);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
}

TEST(ColumnTest, AllValidBitmapNormalizedAway) {
  Column c = Column::MakeInt64({1, 2}, {1, 1});
  EXPECT_FALSE(c.has_nulls());
  EXPECT_TRUE(c.validity().empty());
}

TEST(ColumnTest, TakeGathersAndPreservesNulls) {
  Column c = Column::MakeInt64({10, 20, 30, 40}, {1, 0, 1, 1});
  Column t = c.Take({3, 1, 1, 0});
  EXPECT_EQ(t.length(), 4);
  EXPECT_EQ(t.Int64At(0), 40);
  EXPECT_TRUE(t.IsNull(1));
  EXPECT_TRUE(t.IsNull(2));
  EXPECT_EQ(t.Int64At(3), 10);
}

TEST(ColumnTest, TakeEmptyGivesEmptyColumn) {
  Column c = Column::MakeString({"a", "b"});
  Column t = c.Take({});
  EXPECT_EQ(t.length(), 0);
  EXPECT_EQ(t.type(), DataType::kString);
}

TEST(ColumnTest, ByteSizeGrowsWithData) {
  Column small = Column::MakeInt64({1});
  Column big = Column::MakeInt64(std::vector<int64_t>(1000, 7));
  EXPECT_GT(big.ByteSize(), small.ByteSize());
  EXPECT_GE(big.ByteSize(), 8000u);
}

TEST(ColumnTest, ValueToString) {
  Column i = Column::MakeInt64({42, 0}, {1, 0});
  EXPECT_EQ(i.ValueToString(0), "42");
  EXPECT_EQ(i.ValueToString(1), "null");
  Column b = Column::MakeBool({1});
  EXPECT_EQ(b.ValueToString(0), "true");
  Column s = Column::MakeString({"hey"});
  EXPECT_EQ(s.ValueToString(0), "hey");
}

TEST(ColumnBuilderTest, BuildsTypedColumn) {
  ColumnBuilder b(DataType::kFloat64);
  b.AppendFloat64(1.0);
  b.AppendNull();
  b.AppendFloat64(3.0);
  Column c = b.Finish();
  EXPECT_EQ(c.length(), 3);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_DOUBLE_EQ(c.Float64At(2), 3.0);
}

TEST(ColumnBuilderTest, StringsWithNulls) {
  ColumnBuilder b(DataType::kString);
  b.AppendString("x");
  b.AppendNull();
  b.AppendString("zzz");
  Column c = b.Finish();
  EXPECT_EQ(c.StringAt(0), "x");
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.StringAt(2), "zzz");
}

TEST(ColumnBuilderTest, ReusableAfterFinish) {
  ColumnBuilder b(DataType::kInt64);
  b.AppendInt64(1);
  Column first = b.Finish();
  b.AppendInt64(2);
  b.AppendInt64(3);
  Column second = b.Finish();
  EXPECT_EQ(first.length(), 1);
  EXPECT_EQ(second.length(), 2);
  EXPECT_EQ(second.Int64At(0), 2);
}

TEST(ColumnBuilderTest, AppendFromCopiesValuesAndNulls) {
  Column src = Column::MakeString({"a", "b"}, {0, 1});
  ColumnBuilder b(DataType::kString);
  b.AppendFrom(src, 0);
  b.AppendFrom(src, 1);
  Column c = b.Finish();
  EXPECT_TRUE(c.IsNull(0));
  EXPECT_EQ(c.StringAt(1), "b");
}

TEST(ColumnBuilderTest, NoNullsMeansNoValidity) {
  ColumnBuilder b(DataType::kBool);
  b.AppendBool(true);
  b.AppendBool(false);
  Column c = b.Finish();
  EXPECT_FALSE(c.has_nulls());
  EXPECT_TRUE(c.validity().empty());
}

}  // namespace
}  // namespace skadi
