file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_multibackend.dir/bench_t1_multibackend.cc.o"
  "CMakeFiles/bench_t1_multibackend.dir/bench_t1_multibackend.cc.o.d"
  "bench_t1_multibackend"
  "bench_t1_multibackend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_multibackend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
