file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_recovery.dir/bench_a1_recovery.cc.o"
  "CMakeFiles/bench_a1_recovery.dir/bench_a1_recovery.cc.o.d"
  "bench_a1_recovery"
  "bench_a1_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
