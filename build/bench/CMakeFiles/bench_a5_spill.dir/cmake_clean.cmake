file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_spill.dir/bench_a5_spill.cc.o"
  "CMakeFiles/bench_a5_spill.dir/bench_a5_spill.cc.o.d"
  "bench_a5_spill"
  "bench_a5_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
