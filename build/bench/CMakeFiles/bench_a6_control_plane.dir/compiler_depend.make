# Empty compiler generated dependencies file for bench_a6_control_plane.
# This may be replaced when dependencies are built.
