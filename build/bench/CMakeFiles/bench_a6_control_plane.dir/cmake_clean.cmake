file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_control_plane.dir/bench_a6_control_plane.cc.o"
  "CMakeFiles/bench_a6_control_plane.dir/bench_a6_control_plane.cc.o.d"
  "bench_a6_control_plane"
  "bench_a6_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
