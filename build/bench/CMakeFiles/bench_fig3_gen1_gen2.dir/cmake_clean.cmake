file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_gen1_gen2.dir/bench_fig3_gen1_gen2.cc.o"
  "CMakeFiles/bench_fig3_gen1_gen2.dir/bench_fig3_gen1_gen2.cc.o.d"
  "bench_fig3_gen1_gen2"
  "bench_fig3_gen1_gen2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gen1_gen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
