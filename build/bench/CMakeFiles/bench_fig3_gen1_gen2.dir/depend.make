# Empty dependencies file for bench_fig3_gen1_gen2.
# This may be replaced when dependencies are built.
