# Empty compiler generated dependencies file for bench_fig2_access_layer.
# This may be replaced when dependencies are built.
