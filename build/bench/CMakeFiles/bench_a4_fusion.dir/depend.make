# Empty dependencies file for bench_a4_fusion.
# This may be replaced when dependencies are built.
