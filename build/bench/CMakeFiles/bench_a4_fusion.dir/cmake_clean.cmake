file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_fusion.dir/bench_a4_fusion.cc.o"
  "CMakeFiles/bench_a4_fusion.dir/bench_a4_fusion.cc.o.d"
  "bench_a4_fusion"
  "bench_a4_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
