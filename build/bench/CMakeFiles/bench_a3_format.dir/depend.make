# Empty dependencies file for bench_a3_format.
# This may be replaced when dependencies are built.
