file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_format.dir/bench_a3_format.cc.o"
  "CMakeFiles/bench_a3_format.dir/bench_a3_format.cc.o.d"
  "bench_a3_format"
  "bench_a3_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
