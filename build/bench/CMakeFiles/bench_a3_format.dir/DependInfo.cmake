
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a3_format.cc" "bench/CMakeFiles/bench_a3_format.dir/bench_a3_format.cc.o" "gcc" "bench/CMakeFiles/bench_a3_format.dir/bench_a3_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/skadi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/skadi_access.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/skadi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/skadi_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/skadi_format.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/skadi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/skadi_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skadi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skadi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/skadi_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/ownership/CMakeFiles/skadi_ownership.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skadi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
