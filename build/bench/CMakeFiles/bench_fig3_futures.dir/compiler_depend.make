# Empty compiler generated dependencies file for bench_fig3_futures.
# This may be replaced when dependencies are built.
