file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_futures.dir/bench_fig3_futures.cc.o"
  "CMakeFiles/bench_fig3_futures.dir/bench_fig3_futures.cc.o.d"
  "bench_fig3_futures"
  "bench_fig3_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
