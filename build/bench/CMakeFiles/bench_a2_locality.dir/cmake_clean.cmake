file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_locality.dir/bench_a2_locality.cc.o"
  "CMakeFiles/bench_a2_locality.dir/bench_a2_locality.cc.o.d"
  "bench_a2_locality"
  "bench_a2_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
