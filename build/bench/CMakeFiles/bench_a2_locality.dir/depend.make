# Empty dependencies file for bench_a2_locality.
# This may be replaced when dependencies are built.
