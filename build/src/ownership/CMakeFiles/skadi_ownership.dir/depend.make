# Empty dependencies file for skadi_ownership.
# This may be replaced when dependencies are built.
