file(REMOVE_RECURSE
  "CMakeFiles/skadi_ownership.dir/ownership_table.cc.o"
  "CMakeFiles/skadi_ownership.dir/ownership_table.cc.o.d"
  "libskadi_ownership.a"
  "libskadi_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
