file(REMOVE_RECURSE
  "libskadi_ownership.a"
)
