# Empty dependencies file for skadi_ir.
# This may be replaced when dependencies are built.
