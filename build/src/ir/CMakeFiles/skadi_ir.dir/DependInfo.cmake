
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dialects.cc" "src/ir/CMakeFiles/skadi_ir.dir/dialects.cc.o" "gcc" "src/ir/CMakeFiles/skadi_ir.dir/dialects.cc.o.d"
  "/root/repo/src/ir/interp.cc" "src/ir/CMakeFiles/skadi_ir.dir/interp.cc.o" "gcc" "src/ir/CMakeFiles/skadi_ir.dir/interp.cc.o.d"
  "/root/repo/src/ir/ir.cc" "src/ir/CMakeFiles/skadi_ir.dir/ir.cc.o" "gcc" "src/ir/CMakeFiles/skadi_ir.dir/ir.cc.o.d"
  "/root/repo/src/ir/passes.cc" "src/ir/CMakeFiles/skadi_ir.dir/passes.cc.o" "gcc" "src/ir/CMakeFiles/skadi_ir.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skadi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/skadi_format.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skadi_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
