file(REMOVE_RECURSE
  "CMakeFiles/skadi_ir.dir/dialects.cc.o"
  "CMakeFiles/skadi_ir.dir/dialects.cc.o.d"
  "CMakeFiles/skadi_ir.dir/interp.cc.o"
  "CMakeFiles/skadi_ir.dir/interp.cc.o.d"
  "CMakeFiles/skadi_ir.dir/ir.cc.o"
  "CMakeFiles/skadi_ir.dir/ir.cc.o.d"
  "CMakeFiles/skadi_ir.dir/passes.cc.o"
  "CMakeFiles/skadi_ir.dir/passes.cc.o.d"
  "libskadi_ir.a"
  "libskadi_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
