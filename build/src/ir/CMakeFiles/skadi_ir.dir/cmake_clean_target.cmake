file(REMOVE_RECURSE
  "libskadi_ir.a"
)
