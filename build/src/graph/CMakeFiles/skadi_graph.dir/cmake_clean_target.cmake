file(REMOVE_RECURSE
  "libskadi_graph.a"
)
