# Empty dependencies file for skadi_graph.
# This may be replaced when dependencies are built.
