file(REMOVE_RECURSE
  "CMakeFiles/skadi_graph.dir/executor.cc.o"
  "CMakeFiles/skadi_graph.dir/executor.cc.o.d"
  "CMakeFiles/skadi_graph.dir/flow_graph.cc.o"
  "CMakeFiles/skadi_graph.dir/flow_graph.cc.o.d"
  "CMakeFiles/skadi_graph.dir/physical.cc.o"
  "CMakeFiles/skadi_graph.dir/physical.cc.o.d"
  "libskadi_graph.a"
  "libskadi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
