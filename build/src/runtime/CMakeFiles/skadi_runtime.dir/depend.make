# Empty dependencies file for skadi_runtime.
# This may be replaced when dependencies are built.
