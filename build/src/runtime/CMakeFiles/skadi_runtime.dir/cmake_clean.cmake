file(REMOVE_RECURSE
  "CMakeFiles/skadi_runtime.dir/autoscaler.cc.o"
  "CMakeFiles/skadi_runtime.dir/autoscaler.cc.o.d"
  "CMakeFiles/skadi_runtime.dir/cluster.cc.o"
  "CMakeFiles/skadi_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/skadi_runtime.dir/raylet.cc.o"
  "CMakeFiles/skadi_runtime.dir/raylet.cc.o.d"
  "CMakeFiles/skadi_runtime.dir/runtime.cc.o"
  "CMakeFiles/skadi_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/skadi_runtime.dir/scheduler.cc.o"
  "CMakeFiles/skadi_runtime.dir/scheduler.cc.o.d"
  "libskadi_runtime.a"
  "libskadi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
