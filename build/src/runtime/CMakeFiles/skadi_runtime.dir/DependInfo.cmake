
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/autoscaler.cc" "src/runtime/CMakeFiles/skadi_runtime.dir/autoscaler.cc.o" "gcc" "src/runtime/CMakeFiles/skadi_runtime.dir/autoscaler.cc.o.d"
  "/root/repo/src/runtime/cluster.cc" "src/runtime/CMakeFiles/skadi_runtime.dir/cluster.cc.o" "gcc" "src/runtime/CMakeFiles/skadi_runtime.dir/cluster.cc.o.d"
  "/root/repo/src/runtime/raylet.cc" "src/runtime/CMakeFiles/skadi_runtime.dir/raylet.cc.o" "gcc" "src/runtime/CMakeFiles/skadi_runtime.dir/raylet.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/skadi_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/skadi_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/skadi_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/skadi_runtime.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skadi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skadi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skadi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/skadi_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/skadi_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ownership/CMakeFiles/skadi_ownership.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
