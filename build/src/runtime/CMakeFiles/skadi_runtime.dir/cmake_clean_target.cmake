file(REMOVE_RECURSE
  "libskadi_runtime.a"
)
