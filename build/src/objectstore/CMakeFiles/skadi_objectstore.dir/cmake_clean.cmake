file(REMOVE_RECURSE
  "CMakeFiles/skadi_objectstore.dir/local_store.cc.o"
  "CMakeFiles/skadi_objectstore.dir/local_store.cc.o.d"
  "libskadi_objectstore.a"
  "libskadi_objectstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_objectstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
