file(REMOVE_RECURSE
  "libskadi_objectstore.a"
)
