# Empty dependencies file for skadi_objectstore.
# This may be replaced when dependencies are built.
