file(REMOVE_RECURSE
  "libskadi_net.a"
)
