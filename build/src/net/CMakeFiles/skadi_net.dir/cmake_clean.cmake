file(REMOVE_RECURSE
  "CMakeFiles/skadi_net.dir/fabric.cc.o"
  "CMakeFiles/skadi_net.dir/fabric.cc.o.d"
  "libskadi_net.a"
  "libskadi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
