# Empty dependencies file for skadi_net.
# This may be replaced when dependencies are built.
