# Empty compiler generated dependencies file for skadi_access.
# This may be replaced when dependencies are built.
