file(REMOVE_RECURSE
  "libskadi_access.a"
)
