file(REMOVE_RECURSE
  "CMakeFiles/skadi_access.dir/graph_analytics.cc.o"
  "CMakeFiles/skadi_access.dir/graph_analytics.cc.o.d"
  "CMakeFiles/skadi_access.dir/mapreduce.cc.o"
  "CMakeFiles/skadi_access.dir/mapreduce.cc.o.d"
  "CMakeFiles/skadi_access.dir/ml.cc.o"
  "CMakeFiles/skadi_access.dir/ml.cc.o.d"
  "CMakeFiles/skadi_access.dir/sql_lexer.cc.o"
  "CMakeFiles/skadi_access.dir/sql_lexer.cc.o.d"
  "CMakeFiles/skadi_access.dir/sql_parser.cc.o"
  "CMakeFiles/skadi_access.dir/sql_parser.cc.o.d"
  "CMakeFiles/skadi_access.dir/sql_planner.cc.o"
  "CMakeFiles/skadi_access.dir/sql_planner.cc.o.d"
  "CMakeFiles/skadi_access.dir/streaming.cc.o"
  "CMakeFiles/skadi_access.dir/streaming.cc.o.d"
  "libskadi_access.a"
  "libskadi_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
