file(REMOVE_RECURSE
  "libskadi_common.a"
)
