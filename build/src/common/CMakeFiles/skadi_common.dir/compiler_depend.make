# Empty compiler generated dependencies file for skadi_common.
# This may be replaced when dependencies are built.
