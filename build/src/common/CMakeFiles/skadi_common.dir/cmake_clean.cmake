file(REMOVE_RECURSE
  "CMakeFiles/skadi_common.dir/logging.cc.o"
  "CMakeFiles/skadi_common.dir/logging.cc.o.d"
  "CMakeFiles/skadi_common.dir/status.cc.o"
  "CMakeFiles/skadi_common.dir/status.cc.o.d"
  "libskadi_common.a"
  "libskadi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
