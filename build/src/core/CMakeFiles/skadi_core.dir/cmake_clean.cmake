file(REMOVE_RECURSE
  "CMakeFiles/skadi_core.dir/skadi.cc.o"
  "CMakeFiles/skadi_core.dir/skadi.cc.o.d"
  "libskadi_core.a"
  "libskadi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
