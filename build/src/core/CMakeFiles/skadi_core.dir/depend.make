# Empty dependencies file for skadi_core.
# This may be replaced when dependencies are built.
