file(REMOVE_RECURSE
  "libskadi_core.a"
)
