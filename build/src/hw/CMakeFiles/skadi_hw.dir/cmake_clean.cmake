file(REMOVE_RECURSE
  "CMakeFiles/skadi_hw.dir/cost_model.cc.o"
  "CMakeFiles/skadi_hw.dir/cost_model.cc.o.d"
  "CMakeFiles/skadi_hw.dir/device.cc.o"
  "CMakeFiles/skadi_hw.dir/device.cc.o.d"
  "CMakeFiles/skadi_hw.dir/topology.cc.o"
  "CMakeFiles/skadi_hw.dir/topology.cc.o.d"
  "libskadi_hw.a"
  "libskadi_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
