# Empty compiler generated dependencies file for skadi_hw.
# This may be replaced when dependencies are built.
