file(REMOVE_RECURSE
  "libskadi_hw.a"
)
