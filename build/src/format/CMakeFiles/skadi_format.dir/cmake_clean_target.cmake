file(REMOVE_RECURSE
  "libskadi_format.a"
)
