
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/column.cc" "src/format/CMakeFiles/skadi_format.dir/column.cc.o" "gcc" "src/format/CMakeFiles/skadi_format.dir/column.cc.o.d"
  "/root/repo/src/format/compute.cc" "src/format/CMakeFiles/skadi_format.dir/compute.cc.o" "gcc" "src/format/CMakeFiles/skadi_format.dir/compute.cc.o.d"
  "/root/repo/src/format/expr.cc" "src/format/CMakeFiles/skadi_format.dir/expr.cc.o" "gcc" "src/format/CMakeFiles/skadi_format.dir/expr.cc.o.d"
  "/root/repo/src/format/record_batch.cc" "src/format/CMakeFiles/skadi_format.dir/record_batch.cc.o" "gcc" "src/format/CMakeFiles/skadi_format.dir/record_batch.cc.o.d"
  "/root/repo/src/format/serde.cc" "src/format/CMakeFiles/skadi_format.dir/serde.cc.o" "gcc" "src/format/CMakeFiles/skadi_format.dir/serde.cc.o.d"
  "/root/repo/src/format/tensor.cc" "src/format/CMakeFiles/skadi_format.dir/tensor.cc.o" "gcc" "src/format/CMakeFiles/skadi_format.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skadi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
