file(REMOVE_RECURSE
  "CMakeFiles/skadi_format.dir/column.cc.o"
  "CMakeFiles/skadi_format.dir/column.cc.o.d"
  "CMakeFiles/skadi_format.dir/compute.cc.o"
  "CMakeFiles/skadi_format.dir/compute.cc.o.d"
  "CMakeFiles/skadi_format.dir/expr.cc.o"
  "CMakeFiles/skadi_format.dir/expr.cc.o.d"
  "CMakeFiles/skadi_format.dir/record_batch.cc.o"
  "CMakeFiles/skadi_format.dir/record_batch.cc.o.d"
  "CMakeFiles/skadi_format.dir/serde.cc.o"
  "CMakeFiles/skadi_format.dir/serde.cc.o.d"
  "CMakeFiles/skadi_format.dir/tensor.cc.o"
  "CMakeFiles/skadi_format.dir/tensor.cc.o.d"
  "libskadi_format.a"
  "libskadi_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
