# Empty compiler generated dependencies file for skadi_format.
# This may be replaced when dependencies are built.
