
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/caching_layer.cc" "src/cache/CMakeFiles/skadi_cache.dir/caching_layer.cc.o" "gcc" "src/cache/CMakeFiles/skadi_cache.dir/caching_layer.cc.o.d"
  "/root/repo/src/cache/erasure.cc" "src/cache/CMakeFiles/skadi_cache.dir/erasure.cc.o" "gcc" "src/cache/CMakeFiles/skadi_cache.dir/erasure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skadi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skadi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/skadi_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skadi_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
