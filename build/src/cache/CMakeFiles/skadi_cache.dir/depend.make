# Empty dependencies file for skadi_cache.
# This may be replaced when dependencies are built.
