file(REMOVE_RECURSE
  "libskadi_cache.a"
)
