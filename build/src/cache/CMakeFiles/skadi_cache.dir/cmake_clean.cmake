file(REMOVE_RECURSE
  "CMakeFiles/skadi_cache.dir/caching_layer.cc.o"
  "CMakeFiles/skadi_cache.dir/caching_layer.cc.o.d"
  "CMakeFiles/skadi_cache.dir/erasure.cc.o"
  "CMakeFiles/skadi_cache.dir/erasure.cc.o.d"
  "libskadi_cache.a"
  "libskadi_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skadi_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
