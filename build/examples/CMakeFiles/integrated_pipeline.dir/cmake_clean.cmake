file(REMOVE_RECURSE
  "CMakeFiles/integrated_pipeline.dir/integrated_pipeline.cpp.o"
  "CMakeFiles/integrated_pipeline.dir/integrated_pipeline.cpp.o.d"
  "integrated_pipeline"
  "integrated_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrated_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
