# Empty dependencies file for integrated_pipeline.
# This may be replaced when dependencies are built.
