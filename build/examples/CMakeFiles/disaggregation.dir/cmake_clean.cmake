file(REMOVE_RECURSE
  "CMakeFiles/disaggregation.dir/disaggregation.cpp.o"
  "CMakeFiles/disaggregation.dir/disaggregation.cpp.o.d"
  "disaggregation"
  "disaggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
