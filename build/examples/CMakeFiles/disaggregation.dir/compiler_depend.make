# Empty compiler generated dependencies file for disaggregation.
# This may be replaced when dependencies are built.
