file(REMOVE_RECURSE
  "CMakeFiles/format_test.dir/format/column_test.cc.o"
  "CMakeFiles/format_test.dir/format/column_test.cc.o.d"
  "CMakeFiles/format_test.dir/format/compute_test.cc.o"
  "CMakeFiles/format_test.dir/format/compute_test.cc.o.d"
  "CMakeFiles/format_test.dir/format/expr_test.cc.o"
  "CMakeFiles/format_test.dir/format/expr_test.cc.o.d"
  "CMakeFiles/format_test.dir/format/record_batch_test.cc.o"
  "CMakeFiles/format_test.dir/format/record_batch_test.cc.o.d"
  "CMakeFiles/format_test.dir/format/serde_test.cc.o"
  "CMakeFiles/format_test.dir/format/serde_test.cc.o.d"
  "CMakeFiles/format_test.dir/format/tensor_test.cc.o"
  "CMakeFiles/format_test.dir/format/tensor_test.cc.o.d"
  "format_test"
  "format_test.pdb"
  "format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
