
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/cost_model_test.cc" "tests/CMakeFiles/hw_test.dir/hw/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/cost_model_test.cc.o.d"
  "/root/repo/tests/hw/device_test.cc" "tests/CMakeFiles/hw_test.dir/hw/device_test.cc.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/device_test.cc.o.d"
  "/root/repo/tests/hw/topology_test.cc" "tests/CMakeFiles/hw_test.dir/hw/topology_test.cc.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/topology_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skadi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skadi_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skadi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/skadi_format.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/skadi_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/skadi_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ownership/CMakeFiles/skadi_ownership.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/skadi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/skadi_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
